//! `odin top` — one-screen live view of a serving front end: per-stream
//! throughput, queue depths, serving precision, and drift/attic
//! counters, refreshed from `/metrics` + `/healthz`.
//!
//! Exits nonzero (after rendering) when the deployment is unhealthy:
//! `/healthz` reports a degraded status, or any stream's admission
//! queue sits at its cap. `--once` renders a single frame (scripts,
//! CI); otherwise the screen refreshes every `--interval` until
//! interrupted or the health check trips.

use std::collections::HashMap;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::fmt::{self, healthz_alarm, json_u64_array};
use crate::take_value;

pub fn run(args: &[String]) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut once = false;
    let mut interval = Duration::from_secs(2);
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = Some(take_value(args, &mut i, "--addr")?),
            "--once" => once = true,
            "--interval" => {
                let v = take_value(args, &mut i, "--interval")?;
                interval = Duration::from_micros(fmt::parse_time_us(&v)?.max(100_000));
            }
            other => return Err(format!("top: unknown flag `{other}`")),
        }
        i += 1;
    }
    let addr = addr.ok_or("top needs --addr HOST:PORT")?;
    let sock: SocketAddr = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolving {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr} resolved to nothing"))?;

    let mut prev: Option<(Instant, Metrics)> = None;
    loop {
        let (hs, health) = odin_telemetry::http::get(sock, "/healthz")
            .map_err(|e| format!("GET /healthz: {e}"))?;
        if !hs.contains("200") {
            return Err(format!("/healthz returned {hs}"));
        }
        let (ms, metrics) = odin_telemetry::http::get(sock, "/metrics")
            .map_err(|e| format!("GET /metrics: {e}"))?;
        if !ms.contains("200") {
            return Err(format!("/metrics returned {ms}"));
        }
        let now = Instant::now();
        let parsed = Metrics::parse(&metrics);
        if !once {
            // Clear screen + home, like top(1).
            print!("\x1b[2J\x1b[H");
        }
        render(&addr, &health, &parsed, prev.as_ref().map(|(t, m)| (now - *t, m)));
        if let Some(reason) = healthz_alarm(&health) {
            return Err(format!("unhealthy: {reason}"));
        }
        if once {
            return Ok(());
        }
        prev = Some((now, parsed));
        std::thread::sleep(interval);
    }
}

/// The samples `top` renders, keyed by `(metric, stream label)` —
/// stream is `None` for unlabeled (single-pipeline) expositions.
struct Metrics {
    samples: HashMap<(String, Option<u32>), f64>,
}

impl Metrics {
    fn parse(text: &str) -> Metrics {
        let mut samples = HashMap::new();
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let Some((name_part, value)) = line.rsplit_once(' ') else { continue };
            let Ok(value) = value.parse::<f64>() else { continue };
            let (name, stream) = match name_part.split_once('{') {
                None => (name_part.to_string(), None),
                Some((name, labels)) => {
                    let stream = labels
                        .strip_prefix("stream=\"")
                        .and_then(|rest| rest.split('"').next())
                        .and_then(|id| id.parse().ok());
                    (name.to_string(), stream)
                }
            };
            samples.insert((name, stream), value);
        }
        Metrics { samples }
    }

    fn get(&self, name: &str, stream: Option<u32>) -> f64 {
        self.samples.get(&(name.to_string(), stream)).copied().unwrap_or(0.0)
    }

    /// Stream labels present in the exposition, sorted. Empty means an
    /// unlabeled single-pipeline exposition.
    fn streams(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .samples
            .keys()
            .filter_map(|(_, s)| *s)
            .collect::<std::collections::BTreeSet<u32>>()
            .into_iter()
            .collect();
        ids.sort_unstable();
        ids
    }
}

fn render(addr: &str, health: &str, m: &Metrics, prev: Option<(Duration, &Metrics)>) {
    let status =
        health.split("\"status\":\"").nth(1).and_then(|s| s.split('"').next()).unwrap_or("?");
    let queue_depths = json_u64_array(health, "queue_depths").unwrap_or_default();
    let queue_cap = health
        .split("\"queue_cap\":")
        .nth(1)
        .and_then(|s| s.split([',', '}']).next())
        .and_then(|v| v.parse::<u64>().ok());
    let cap = queue_cap.map(|c| c.to_string()).unwrap_or_else(|| "-".to_string());
    println!("odin top — {addr}   status: {status}   queue cap: {cap}");
    println!(
        "{:<7} {:>9} {:>8} {:>6} {:>5} {:>10} {:>6} {:>9} {:>10} {:>9}",
        "STREAM",
        "FRAMES",
        "FPS",
        "QUEUE",
        "LOGQ",
        "PRECISION",
        "DRIFT",
        "INSTALLS",
        "ATTIC(h/m)",
        "REJECTED"
    );
    let streams = m.streams();
    let rows: Vec<Option<u32>> =
        if streams.is_empty() { vec![None] } else { streams.into_iter().map(Some).collect() };
    for s in rows {
        let frames = m.get("odin_frames_total", s);
        let fps = match prev {
            Some((dt, p)) if dt.as_secs_f64() > 0.0 => {
                format!("{:.1}", (frames - p.get("odin_frames_total", s)) / dt.as_secs_f64())
            }
            _ => "-".to_string(),
        };
        let depth = match s {
            Some(id) => queue_depths.get(id as usize).copied().unwrap_or(0),
            None => 0,
        };
        let installs = m.get("odin_models_installed_lite_total", s)
            + m.get("odin_models_installed_specialized_total", s);
        let precision = if m.get("odin_serve_precision", s) >= 1.0 { "int8" } else { "f32" };
        println!(
            "{:<7} {:>9} {:>8} {:>6} {:>5} {:>10} {:>6} {:>9} {:>10} {:>9}",
            s.map(|id| id.to_string()).unwrap_or_else(|| "-".to_string()),
            frames as u64,
            fps,
            depth,
            m.get("odin_event_log_queue_depth", s) as u64,
            precision,
            m.get("odin_drift_events_total", s) as u64,
            installs as u64,
            format!(
                "{}/{}",
                m.get("odin_attic_hits_total", s) as u64,
                m.get("odin_attic_misses_total", s) as u64
            ),
            m.get("odin_server_rejected_total", s) as u64,
        );
    }
}

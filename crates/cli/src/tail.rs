//! `odin tail` — cursor-paged (and optionally following) tail of the
//! event log, against a live server's `GET /events` route or directly
//! against `events.odlg` files.
//!
//! Three sources:
//!
//! * `--addr HOST:PORT` — long-polls the serving front end; the cursor
//!   string is opaque (the server joins one `seq:offset` per stream).
//! * `--log FILE` — reads one log file with [`read_after`] (sealed
//!   segments only, safe against a live writer).
//! * `--store DIR` — reads the standalone `events.odlg` and/or every
//!   `streams/<id>/events.odlg` shard with one cursor per file.
//!
//! One-shot mode drains everything after the start cursor and prints
//! the final cursor on stderr (resume with `--cursor`). `-f` keeps
//! following; `--for DUR` bounds the follow window (for scripts/CI).

use std::net::{SocketAddr, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use odin_log::{read_after, Cursor, LogRecord, RecordKind, EVENT_LOG_FILE};

use crate::fmt;
use crate::take_value;

/// Poll interval between file reads (and between empty HTTP pages,
/// on top of the server-side long-poll) while following.
const FOLLOW_POLL_MS: u64 = 200;

/// Server-side long-poll budget per request in follow mode.
const FOLLOW_WAIT_MS: u64 = 2_000;

enum Source {
    Addr(SocketAddr),
    Files(Vec<PathBuf>),
}

pub fn run(args: &[String]) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut log: Option<PathBuf> = None;
    let mut store: Option<PathBuf> = None;
    let mut kind: Option<RecordKind> = None;
    let mut cursor_arg: Option<String> = None;
    let mut json = false;
    let mut follow = false;
    let mut limit: usize = 256;
    let mut window: Option<Duration> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = Some(take_value(args, &mut i, "--addr")?),
            "--log" => log = Some(PathBuf::from(take_value(args, &mut i, "--log")?)),
            "--store" => store = Some(PathBuf::from(take_value(args, &mut i, "--store")?)),
            "--kind" => {
                let v = take_value(args, &mut i, "--kind")?;
                kind = Some(RecordKind::parse(&v).ok_or_else(|| format!("unknown kind `{v}`"))?);
            }
            "--cursor" => cursor_arg = Some(take_value(args, &mut i, "--cursor")?),
            "--limit" => {
                limit = take_value(args, &mut i, "--limit")?
                    .parse()
                    .map_err(|_| "bad --limit".to_string())?;
            }
            "--for" => {
                let v = take_value(args, &mut i, "--for")?;
                window = Some(Duration::from_micros(fmt::parse_time_us(&v)?));
            }
            "--json" => json = true,
            "-f" | "--follow" => follow = true,
            other => return Err(format!("tail: unknown flag `{other}`")),
        }
        i += 1;
    }
    let source = match (addr, log, store) {
        (Some(a), None, None) => {
            let sock: SocketAddr = a
                .to_socket_addrs()
                .map_err(|e| format!("resolving {a}: {e}"))?
                .next()
                .ok_or_else(|| format!("{a} resolved to nothing"))?;
            Source::Addr(sock)
        }
        (None, Some(file), None) => Source::Files(vec![file]),
        (None, None, Some(dir)) => Source::Files(store_logs(&dir)?),
        _ => return Err("tail needs exactly one of --addr, --log, --store".to_string()),
    };

    let mut tail = TailState::start(source, cursor_arg, kind, limit)?;
    let deadline = window.map(|w| Instant::now() + w);
    let mut printed_any = false;
    loop {
        // `progressed` distinguishes "nothing new on disk" from "a
        // page of records the kind filter dropped" — one-shot mode
        // must keep paging through the latter.
        let (records, progressed) = tail.next_batch(follow)?;
        if !records.is_empty() {
            if !json && !printed_any {
                println!("{}", fmt::TABLE_HEADER);
            }
            printed_any = true;
            for r in &records {
                if json {
                    println!("{}", fmt::json(r));
                } else {
                    println!("{}", fmt::row(r));
                }
            }
        } else if !progressed {
            if !follow {
                break;
            }
            std::thread::sleep(Duration::from_millis(FOLLOW_POLL_MS));
        }
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                break;
            }
        }
    }
    eprintln!("cursor: {}", tail.cursor_string());
    Ok(())
}

/// The event-log files under a store directory, in stable order: the
/// standalone `events.odlg` first (if present), then every
/// `streams/<id>/` shard sorted by stream id.
fn store_logs(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut logs = Vec::new();
    let single = dir.join(EVENT_LOG_FILE);
    if single.is_file() {
        logs.push(single);
    }
    let streams = dir.join("streams");
    if streams.is_dir() {
        let mut ids: Vec<u64> = std::fs::read_dir(&streams)
            .map_err(|e| format!("reading {}: {e}", streams.display()))?
            .filter_map(|e| e.ok()?.file_name().to_str()?.parse().ok())
            .collect();
        ids.sort_unstable();
        for id in ids {
            let shard = streams.join(id.to_string()).join(EVENT_LOG_FILE);
            if shard.is_file() {
                logs.push(shard);
            }
        }
    }
    if logs.is_empty() {
        return Err(format!("no event logs under {} (is the event log enabled?)", dir.display()));
    }
    Ok(logs)
}

struct TailState {
    source: Source,
    kind: Option<RecordKind>,
    limit: usize,
    /// Addr mode: the server's opaque cursor string.
    http_cursor: String,
    /// File mode: one cursor per file, same order as the paths.
    file_cursors: Vec<Cursor>,
}

impl TailState {
    fn start(
        source: Source,
        cursor_arg: Option<String>,
        kind: Option<RecordKind>,
        limit: usize,
    ) -> Result<TailState, String> {
        let mut state = TailState {
            kind,
            limit: limit.max(1),
            http_cursor: String::new(),
            file_cursors: Vec::new(),
            source,
        };
        match &state.source {
            Source::Addr(_) => state.http_cursor = cursor_arg.unwrap_or_default(),
            Source::Files(paths) => {
                state.file_cursors = match cursor_arg {
                    None => vec![Cursor::default(); paths.len()],
                    Some(s) => {
                        let parsed: Option<Vec<Cursor>> = s.split(',').map(Cursor::parse).collect();
                        match parsed {
                            Some(v) if v.len() == paths.len() => v,
                            _ => {
                                return Err(format!(
                                    "bad --cursor (expected {} comma-separated seq:offset entries)",
                                    paths.len()
                                ))
                            }
                        }
                    }
                };
            }
        }
        Ok(state)
    }

    fn cursor_string(&self) -> String {
        match &self.source {
            Source::Addr(_) => self.http_cursor.clone(),
            Source::Files(_) => {
                self.file_cursors.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",")
            }
        }
    }

    /// One fetch round: advances the cursor and returns the new
    /// records (already kind-filtered, merged in record-time order)
    /// plus whether the cursor moved at all.
    fn next_batch(&mut self, follow: bool) -> Result<(Vec<LogRecord>, bool), String> {
        match &self.source {
            Source::Addr(sock) => {
                let mut path = format!(
                    "/events?cursor={}&limit={}&wait_ms={}",
                    self.http_cursor,
                    self.limit,
                    if follow { FOLLOW_WAIT_MS } else { 0 },
                );
                if let Some(kind) = self.kind {
                    path.push_str("&kind=");
                    path.push_str(kind.name());
                }
                let (status, body) = odin_telemetry::http::get(*sock, &path)
                    .map_err(|e| format!("GET /events: {e}"))?;
                if !status.contains("200") {
                    return Err(format!("/events returned {status}: {}", body.trim()));
                }
                let (cursor, records) = fmt::parse_events_body(&body)?;
                let progressed = cursor != self.http_cursor;
                self.http_cursor = cursor;
                Ok((records, progressed))
            }
            Source::Files(paths) => {
                let mut records: Vec<LogRecord> = Vec::new();
                let mut progressed = false;
                for (i, path) in paths.iter().enumerate() {
                    let batch = read_after(path, self.file_cursors[i], self.limit)
                        .map_err(|e| format!("reading {}: {e}", path.display()))?;
                    progressed |= batch.next != self.file_cursors[i];
                    self.file_cursors[i] = batch.next;
                    records.extend(
                        batch.records.into_iter().filter(|r| self.kind.is_none_or(|k| r.kind == k)),
                    );
                }
                records.sort_by_key(|r| (r.ts_us, r.stream, r.seq));
                Ok((records, progressed))
            }
        }
    }
}

//! `odin scan` — predicate queries over event logs.

use std::path::PathBuf;

use odin_log::{scan_log, scan_store, Predicate, RecordKind, ScanResult, ServedLabel};

use crate::fmt;
use crate::take_value;

/// Where to read records from: one log file or a store directory
/// (root log plus every `streams/<id>/` shard).
pub enum Source {
    Log(PathBuf),
    Store(PathBuf),
}

impl Source {
    pub fn scan(&self, pred: &Predicate) -> Result<ScanResult, String> {
        let res = match self {
            Source::Log(p) => scan_log(p, pred),
            Source::Store(p) => scan_store(p, pred),
        };
        res.map_err(|e| {
            let what = match self {
                Source::Log(p) | Source::Store(p) => p.display().to_string(),
            };
            format!("scanning {what}: {e}")
        })
    }
}

/// Parsed `scan` invocation; `explain` reuses the source + predicate
/// parsing and ignores the presentation flags.
pub struct ScanArgs {
    pub source: Source,
    pub pred: Predicate,
    pub json: bool,
    pub stats: bool,
    pub limit: Option<usize>,
}

pub fn parse(args: &[String], cmd: &str) -> Result<ScanArgs, String> {
    let mut log: Option<PathBuf> = None;
    let mut store: Option<PathBuf> = None;
    let mut pred = Predicate::default();
    let mut json = false;
    let mut stats = false;
    let mut limit = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--log" => log = Some(PathBuf::from(take_value(args, &mut i, "--log")?)),
            "--store" => store = Some(PathBuf::from(take_value(args, &mut i, "--store")?)),
            "--stream" => {
                let v = take_value(args, &mut i, "--stream")?;
                pred.stream = Some(v.parse().map_err(|_| format!("bad stream `{v}`"))?);
            }
            "--since" => {
                pred.ts_min_us = Some(fmt::parse_time_us(&take_value(args, &mut i, "--since")?)?);
            }
            "--until" => {
                pred.ts_max_us = Some(fmt::parse_time_us(&take_value(args, &mut i, "--until")?)?);
            }
            "--frame-min" => {
                let v = take_value(args, &mut i, "--frame-min")?;
                pred.frame_min = Some(v.parse().map_err(|_| format!("bad frame `{v}`"))?);
            }
            "--frame-max" => {
                let v = take_value(args, &mut i, "--frame-max")?;
                pred.frame_max = Some(v.parse().map_err(|_| format!("bad frame `{v}`"))?);
            }
            "--cluster" => {
                let v = take_value(args, &mut i, "--cluster")?;
                pred.cluster = Some(v.parse().map_err(|_| format!("bad cluster `{v}`"))?);
            }
            "--kind" => {
                let v = take_value(args, &mut i, "--kind")?;
                pred.kind =
                    Some(RecordKind::parse(&v).ok_or_else(|| format!("unknown kind `{v}`"))?);
            }
            "--served" => {
                let v = take_value(args, &mut i, "--served")?;
                pred.served =
                    Some(ServedLabel::parse(&v).ok_or_else(|| format!("unknown served `{v}`"))?);
            }
            "--trace" => {
                pred.trace = Some(fmt::parse_trace(&take_value(args, &mut i, "--trace")?)?);
            }
            "--limit" => {
                let v = take_value(args, &mut i, "--limit")?;
                limit = Some(v.parse().map_err(|_| format!("bad limit `{v}`"))?);
            }
            "--json" => json = true,
            "--stats" => stats = true,
            other => return Err(format!("{cmd}: unknown flag `{other}`")),
        }
        i += 1;
    }
    let source = match (log, store) {
        (Some(p), None) => Source::Log(p),
        (None, Some(p)) => Source::Store(p),
        (None, None) => return Err(format!("{cmd} needs --log FILE or --store DIR")),
        (Some(_), Some(_)) => return Err(format!("{cmd}: --log and --store are exclusive")),
    };
    Ok(ScanArgs { source, pred, json, stats, limit })
}

pub fn run(args: &[String]) -> Result<(), String> {
    let a = parse(args, "scan")?;
    let res = a.source.scan(&a.pred)?;
    let shown = a.limit.unwrap_or(res.records.len()).min(res.records.len());

    if a.json {
        println!("[");
        for (i, r) in res.records[..shown].iter().enumerate() {
            let comma = if i + 1 < shown { "," } else { "" };
            println!("  {}{comma}", fmt::json(r));
        }
        println!("]");
    } else {
        if shown > 0 {
            println!("{}", fmt::TABLE_HEADER);
        }
        for r in &res.records[..shown] {
            println!("{}", fmt::row(r));
        }
        if shown < res.records.len() {
            println!("... {} more (raise --limit)", res.records.len() - shown);
        }
        if res.records.is_empty() {
            println!("no matching records");
        }
    }
    if a.stats {
        let s = &res.stats;
        eprintln!(
            "scan: {} file(s), {} record(s) matched; segments: {} total, \
             {} pruned by zone maps, {} scanned{}",
            s.files,
            s.records_matched,
            s.segments_total,
            s.segments_pruned,
            s.segments_scanned,
            if s.torn_tail { "; torn tail skipped" } else { "" },
        );
    }
    Ok(())
}

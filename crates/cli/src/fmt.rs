//! Shared parsing and rendering helpers for the CLI.

use odin_log::LogRecord;

/// Parses a time argument into microseconds. Accepts `120us`, `250ms`,
/// `1.5s`, or a bare integer (treated as microseconds).
pub fn parse_time_us(s: &str) -> Result<u64, String> {
    let bad = |s: &str| format!("bad time `{s}` (expected e.g. 250ms, 1.5s, 1200us)");
    if let Some(v) = s.strip_suffix("us") {
        return v.parse::<u64>().map_err(|_| bad(s));
    }
    if let Some(v) = s.strip_suffix("ms") {
        let ms: f64 = v.parse().map_err(|_| bad(s))?;
        return Ok((ms * 1_000.0).round() as u64);
    }
    if let Some(v) = s.strip_suffix('s') {
        let secs: f64 = v.parse().map_err(|_| bad(s))?;
        return Ok((secs * 1_000_000.0).round() as u64);
    }
    s.parse::<u64>().map_err(|_| bad(s))
}

/// Parses a trace id, decimal or `0x`-prefixed hex.
pub fn parse_trace(s: &str) -> Result<u64, String> {
    let parsed = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|_| format!("bad trace id `{s}`"))
}

/// Renders microseconds as a human-scaled duration (`832us`, `14.2ms`,
/// `3.150s`).
pub fn human_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.3}s", us as f64 / 1_000_000.0)
    }
}

/// Header row for the record table, matched by [`row`].
pub const TABLE_HEADER: &str =
    "SEQ      KIND             TIME        FRAME    STREAM  CLUSTER  SERVED    DETS  CONF(mean/max)  LATENCY   TRACE";

/// One aligned table row per record.
pub fn row(r: &LogRecord) -> String {
    let cluster = if r.cluster < 0 { "-".to_string() } else { r.cluster.to_string() };
    format!(
        "{:<8} {:<16} {:<11} {:<8} {:<7} {:<8} {:<9} {:<5} {:<15} {:<9} {:#x}",
        r.seq,
        r.kind.name(),
        human_us(r.ts_us),
        r.frame,
        r.stream,
        cluster,
        r.served.name(),
        r.dets,
        format!("{:.2}/{:.2}", r.conf_mean, r.conf_max),
        human_us(r.latency_us),
        r.trace,
    )
}

/// One record as a JSON object (stable key order, no external deps).
pub fn json(r: &LogRecord) -> String {
    format!(
        concat!(
            "{{\"seq\":{},\"kind\":\"{}\",\"ts_us\":{},\"frame\":{},",
            "\"stream\":{},\"cluster\":{},\"served\":\"{}\",\"dets\":{},",
            "\"conf_mean\":{:.4},\"conf_max\":{:.4},\"latency_us\":{},",
            "\"trace\":{}}}"
        ),
        r.seq,
        r.kind.name(),
        r.ts_us,
        r.frame,
        r.stream,
        r.cluster,
        r.served.name(),
        r.dets,
        r.conf_mean,
        r.conf_max,
        r.latency_us,
        r.trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_parsing_accepts_all_suffixes() {
        assert_eq!(parse_time_us("1200us").unwrap(), 1200);
        assert_eq!(parse_time_us("250ms").unwrap(), 250_000);
        assert_eq!(parse_time_us("1.5s").unwrap(), 1_500_000);
        assert_eq!(parse_time_us("42").unwrap(), 42);
        assert!(parse_time_us("soon").is_err());
    }

    #[test]
    fn trace_parsing_accepts_hex_and_decimal() {
        assert_eq!(parse_trace("0x10000000001").unwrap(), (1u64 << 40) + 1);
        assert_eq!(parse_trace("7").unwrap(), 7);
        assert!(parse_trace("0xzz").is_err());
    }

    #[test]
    fn human_durations_scale() {
        assert_eq!(human_us(832), "832us");
        assert_eq!(human_us(14_200), "14.2ms");
        assert_eq!(human_us(3_150_000), "3.150s");
    }
}

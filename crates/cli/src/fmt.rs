//! Shared parsing and rendering helpers for the CLI.

use odin_log::{LogRecord, RecordKind, ServedLabel};

/// Parses a time argument into microseconds. Accepts `120us`, `250ms`,
/// `1.5s`, or a bare integer (treated as microseconds).
pub fn parse_time_us(s: &str) -> Result<u64, String> {
    let bad = |s: &str| format!("bad time `{s}` (expected e.g. 250ms, 1.5s, 1200us)");
    if let Some(v) = s.strip_suffix("us") {
        return v.parse::<u64>().map_err(|_| bad(s));
    }
    if let Some(v) = s.strip_suffix("ms") {
        let ms: f64 = v.parse().map_err(|_| bad(s))?;
        return Ok((ms * 1_000.0).round() as u64);
    }
    if let Some(v) = s.strip_suffix('s') {
        let secs: f64 = v.parse().map_err(|_| bad(s))?;
        return Ok((secs * 1_000_000.0).round() as u64);
    }
    s.parse::<u64>().map_err(|_| bad(s))
}

/// Parses a trace id, decimal or `0x`-prefixed hex.
pub fn parse_trace(s: &str) -> Result<u64, String> {
    let parsed = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|_| format!("bad trace id `{s}`"))
}

/// Renders microseconds as a human-scaled duration (`832us`, `14.2ms`,
/// `3.150s`).
pub fn human_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.3}s", us as f64 / 1_000_000.0)
    }
}

/// Header row for the record table, matched by [`row`].
pub const TABLE_HEADER: &str =
    "SEQ      KIND             TIME        FRAME    STREAM  CLUSTER  SERVED    DETS  CONF(mean/max)  LATENCY   TRACE";

/// One aligned table row per record.
pub fn row(r: &LogRecord) -> String {
    let cluster = if r.cluster < 0 { "-".to_string() } else { r.cluster.to_string() };
    format!(
        "{:<8} {:<16} {:<11} {:<8} {:<7} {:<8} {:<9} {:<5} {:<15} {:<9} {:#x}",
        r.seq,
        r.kind.name(),
        human_us(r.ts_us),
        r.frame,
        r.stream,
        cluster,
        r.served.name(),
        r.dets,
        format!("{:.2}/{:.2}", r.conf_mean, r.conf_max),
        human_us(r.latency_us),
        r.trace,
    )
}

/// One record as a JSON object (stable key order, no external deps).
pub fn json(r: &LogRecord) -> String {
    r.to_json()
}

/// The raw text of `"key":value` inside a flat JSON object (no nested
/// objects; our wire shapes never put `,` or `}` inside strings).
fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Inverse of [`LogRecord::to_json`] for one object (the `/events`
/// wire shape — flat, fixed keys).
pub fn record_from_json(obj: &str) -> Option<LogRecord> {
    Some(LogRecord {
        seq: field(obj, "seq")?.parse().ok()?,
        kind: RecordKind::parse(field(obj, "kind")?.trim_matches('"'))?,
        ts_us: field(obj, "ts_us")?.parse().ok()?,
        frame: field(obj, "frame")?.parse().ok()?,
        stream: field(obj, "stream")?.parse().ok()?,
        cluster: field(obj, "cluster")?.parse().ok()?,
        served: ServedLabel::parse(field(obj, "served")?.trim_matches('"'))?,
        dets: field(obj, "dets")?.parse().ok()?,
        conf_mean: field(obj, "conf_mean")?.parse().ok()?,
        conf_max: field(obj, "conf_max")?.parse().ok()?,
        latency_us: field(obj, "latency_us")?.parse().ok()?,
        trace: field(obj, "trace")?.parse().ok()?,
    })
}

/// Splits a `GET /events` response body into `(next cursor, records)`.
pub fn parse_events_body(body: &str) -> Result<(String, Vec<LogRecord>), String> {
    // The cursor is a quoted string that may itself contain commas
    // (one `seq:offset` per stream), so scan to the closing quote
    // rather than using the flat-value `field` helper.
    let cursor = body
        .find("\"cursor\":\"")
        .map(|i| i + "\"cursor\":\"".len())
        .and_then(|start| {
            let rest = &body[start..];
            rest.find('"').map(|end| rest[..end].to_string())
        })
        .ok_or_else(|| format!("no cursor in /events response: {body}"))?;
    let start = body.find("\"records\":[").map(|i| i + "\"records\":[".len());
    let end = body.rfind(']');
    let (Some(start), Some(end)) = (start, end) else {
        return Err(format!("no records array in /events response: {body}"));
    };
    let inner = &body[start..end];
    let mut records = Vec::new();
    for obj in inner.split("},{") {
        let obj = obj.trim_start_matches('{').trim_end_matches('}');
        if obj.is_empty() {
            continue;
        }
        records
            .push(record_from_json(obj).ok_or_else(|| format!("malformed record object: {obj}"))?);
    }
    Ok((cursor, records))
}

/// The `[a,b,c]` array value of `"key":[...]` as numbers.
pub fn json_u64_array(obj: &str, key: &str) -> Option<Vec<u64>> {
    let pat = format!("\"{key}\":[");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    let inner = &rest[..rest.find(']')?];
    if inner.trim().is_empty() {
        return Some(Vec::new());
    }
    inner.split(',').map(|v| v.trim().parse().ok()).collect()
}

/// Why a `/healthz` body warrants a nonzero exit, if anything: the
/// server reports itself degraded, or some stream's admission queue
/// sits at its cap (ingest is actively shedding load).
pub fn healthz_alarm(health: &str) -> Option<String> {
    if let Some(status) = field(health, "status").map(|v| v.trim_matches('"')) {
        if status != "ok" {
            return Some(format!("status is \"{status}\""));
        }
    }
    if let (Some(cap), Some(depths)) = (
        field(health, "queue_cap").and_then(|v| v.parse::<u64>().ok()),
        json_u64_array(health, "queue_depths"),
    ) {
        if let Some((stream, depth)) = depths.iter().enumerate().find(|(_, d)| **d >= cap) {
            return Some(format!("stream {stream} queue depth {depth} at cap {cap}"));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_parsing_accepts_all_suffixes() {
        assert_eq!(parse_time_us("1200us").unwrap(), 1200);
        assert_eq!(parse_time_us("250ms").unwrap(), 250_000);
        assert_eq!(parse_time_us("1.5s").unwrap(), 1_500_000);
        assert_eq!(parse_time_us("42").unwrap(), 42);
        assert!(parse_time_us("soon").is_err());
    }

    #[test]
    fn trace_parsing_accepts_hex_and_decimal() {
        assert_eq!(parse_trace("0x10000000001").unwrap(), (1u64 << 40) + 1);
        assert_eq!(parse_trace("7").unwrap(), 7);
        assert!(parse_trace("0xzz").is_err());
    }

    #[test]
    fn human_durations_scale() {
        assert_eq!(human_us(832), "832us");
        assert_eq!(human_us(14_200), "14.2ms");
        assert_eq!(human_us(3_150_000), "3.150s");
    }

    #[test]
    fn record_json_round_trips() {
        let rec = LogRecord {
            seq: 9,
            kind: RecordKind::DriftDetected,
            ts_us: 123_456,
            frame: 42,
            stream: 3,
            cluster: -1,
            served: ServedLabel::Teacher,
            dets: 2,
            conf_mean: 0.5,
            conf_max: 0.75,
            latency_us: 810,
            trace: 0xbeef,
        };
        let parsed = record_from_json(&rec.to_json()).expect("parse back");
        assert_eq!(parsed, rec);
    }

    #[test]
    fn events_body_parses_cursor_and_records() {
        let a = LogRecord { seq: 1, ..LogRecord::empty() };
        let b = LogRecord { seq: 2, stream: 1, ..LogRecord::empty() };
        let body = format!(
            "{{\"cursor\":\"2:40,0:8\",\"count\":2,\"records\":[{},{}]}}",
            a.to_json(),
            b.to_json()
        );
        let (cursor, records) = parse_events_body(&body).expect("parse");
        assert_eq!(cursor, "2:40,0:8");
        assert_eq!(records, vec![a, b]);
        let (cursor, records) =
            parse_events_body("{\"cursor\":\"0:8\",\"count\":0,\"records\":[]}").expect("empty");
        assert_eq!(cursor, "0:8");
        assert!(records.is_empty());
    }

    #[test]
    fn healthz_alarms_fire_on_degraded_and_full_queues() {
        assert_eq!(healthz_alarm("{\"status\":\"ok\",\"streams\":2}"), None);
        assert!(healthz_alarm("{\"status\":\"degraded\",\"streams\":2}")
            .is_some_and(|r| r.contains("degraded")));
        let full = "{\"status\":\"ok\",\"streams\":2,\"queue_cap\":8,\"queue_depths\":[0,8]}";
        assert!(healthz_alarm(full).is_some_and(|r| r.contains("stream 1")));
        let fine = "{\"status\":\"ok\",\"streams\":2,\"queue_cap\":8,\"queue_depths\":[7,0]}";
        assert_eq!(healthz_alarm(fine), None);
    }
}

//! `odin status` — liveness and key metrics from a serving front end.
//! Exits nonzero when `/healthz` reports a degraded status or a stream
//! whose admission queue sits at its cap.

use std::net::{SocketAddr, ToSocketAddrs};

use crate::fmt::healthz_alarm;
use crate::take_value;

pub fn run(args: &[String]) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut raw = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = Some(take_value(args, &mut i, "--addr")?),
            "--raw" => raw = true,
            other => return Err(format!("status: unknown flag `{other}`")),
        }
        i += 1;
    }
    let addr = addr.ok_or("status needs --addr HOST:PORT")?;
    let sock: SocketAddr = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolving {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr} resolved to nothing"))?;

    let (hs, health) =
        odin_telemetry::http::get(sock, "/healthz").map_err(|e| format!("GET /healthz: {e}"))?;
    if !hs.contains("200") {
        return Err(format!("/healthz returned {hs}"));
    }
    println!("healthz: {health}");

    let (ms, metrics) =
        odin_telemetry::http::get(sock, "/metrics").map_err(|e| format!("GET /metrics: {e}"))?;
    if !ms.contains("200") {
        return Err(format!("/metrics returned {ms}"));
    }
    if raw {
        print!("{metrics}");
        return match healthz_alarm(&health) {
            Some(reason) => Err(format!("unhealthy: {reason}")),
            None => Ok(()),
        };
    }
    // A curated slice of the exposition: enough to judge serving and
    // recovery health at a glance without scraping.
    const INTERESTING: &[&str] = &[
        "odin_frames_total",
        "odin_drift_events_total",
        "odin_models_installed_lite_total",
        "odin_models_installed_specialized_total",
        "odin_training_queue_depth",
        "odin_server_admitted_total",
        "odin_server_rejected_total",
        "odin_event_log_appended_total",
        "odin_event_log_dropped_total",
        "odin_event_log_queue_depth",
        "odin_store_errors_total",
    ];
    for line in metrics.lines() {
        if line.starts_with('#') {
            continue;
        }
        let name = line.split(['{', ' ']).next().unwrap_or("");
        if INTERESTING.contains(&name) {
            println!("{line}");
        }
    }
    match healthz_alarm(&health) {
        Some(reason) => Err(format!("unhealthy: {reason}")),
        None => Ok(()),
    }
}

//! `odin flight` — fetch the live flight recorder's Chrome-trace dump
//! (`GET /flight`) and write it to a file for Perfetto / chrome://tracing.

use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;

use crate::take_value;

pub fn run(args: &[String]) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut out = PathBuf::from("trace.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = Some(take_value(args, &mut i, "--addr")?),
            "--out" => out = PathBuf::from(take_value(args, &mut i, "--out")?),
            other => return Err(format!("flight: unknown flag `{other}`")),
        }
        i += 1;
    }
    let addr = addr.ok_or("flight needs --addr HOST:PORT")?;
    let sock: SocketAddr = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolving {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr} resolved to nothing"))?;
    let (status, body) =
        odin_telemetry::http::get(sock, "/flight").map_err(|e| format!("GET /flight: {e}"))?;
    if !status.contains("200") {
        return Err(format!("/flight returned {status}"));
    }
    if !body.contains("\"traceEvents\"") {
        return Err(format!("/flight did not return a Chrome trace: {body}"));
    }
    std::fs::write(&out, &body).map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!("flight trace: {} ({} bytes)", out.display(), body.len());
    Ok(())
}

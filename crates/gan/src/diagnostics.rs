//! Latent-space diagnostics — the quantitative counterpart of Figure 2.
//!
//! The paper argues visually that the standard AE's latent space has
//! holes, the adversarial AE's is smooth but lossy, and the DA-GAN's is
//! smooth *and* information-preserving. These functions turn that
//! argument into numbers:
//!
//! * [`moment_gap`] — distance of a latent batch's first two moments from
//!   the N(0,1) prior (large ⇒ the space does not match the prior ⇒
//!   random prior samples land in holes),
//! * [`hole_score`] — how badly the decoder reconstructs from *prior*
//!   samples relative to from encoded samples (large ⇒ holes),
//! * [`separation_ratio`] — outlier-to-inlier mean error ratio (the drift
//!   signal quality).

use odin_tensor::Tensor;

/// `|mean| + |std − 1|` of a latent batch: 0 when the batch matches the
/// N(0,1) prior.
pub fn moment_gap(z: &Tensor) -> f32 {
    assert!(z.numel() > 0, "empty latent batch");
    let mean = z.mean();
    let var = z.map(|v| (v - mean) * (v - mean)).mean();
    mean.abs() + (var.sqrt() - 1.0).abs()
}

/// Ratio of the decoder's "prior-sample strangeness" to its encoded-sample
/// reconstruction quality.
///
/// `errors_from_prior` are per-sample errors of decoding z ~ N(0,1) and
/// re-encoding/decoding; `errors_from_data` are ordinary reconstruction
/// errors. A smooth, hole-free latent space keeps this ratio near 1.
pub fn hole_score(errors_from_prior: &[f32], errors_from_data: &[f32]) -> f32 {
    let mp = mean(errors_from_prior);
    let md = mean(errors_from_data).max(1e-6);
    mp / md
}

/// Outlier-to-inlier mean error ratio; larger means the representation
/// separates drifted data better.
pub fn separation_ratio(inlier_errors: &[f32], outlier_errors: &[f32]) -> f32 {
    let i = mean(inlier_errors).max(1e-6);
    mean(outlier_errors) / i
}

fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moment_gap_zero_for_standard_normal_like() {
        // A synthetic batch with mean 0, std 1.
        let n = 1000;
        let data: Vec<f32> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let z = Tensor::from_vec(data, &[n / 2, 2]);
        assert!(moment_gap(&z) < 0.05);
    }

    #[test]
    fn moment_gap_large_for_shifted_batch() {
        let z = Tensor::full(&[10, 4], 5.0);
        assert!(moment_gap(&z) > 4.0);
    }

    #[test]
    fn hole_score_near_one_when_prior_decodes_well() {
        assert!((hole_score(&[0.1, 0.1], &[0.1, 0.1]) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn separation_ratio_ordering() {
        assert!(separation_ratio(&[0.1], &[0.4]) > separation_ratio(&[0.1], &[0.2]));
    }

    #[test]
    fn empty_slices_do_not_panic() {
        assert_eq!(separation_ratio(&[], &[]), 0.0);
        assert_eq!(hole_score(&[], &[]), 0.0);
    }
}

//! The adversarial autoencoder (Makhzani et al.; §2.3 of the paper).
//!
//! An autoencoder whose latent space is pushed toward a normal prior by a
//! latent discriminator, closing the "holes" of the standard AE at the
//! price of slightly blurrier reconstructions (Figure 2b).

use odin_data::Image;
use odin_tensor::init::randn_latent;
use odin_tensor::layers::{Dense, Flatten, LeakyRelu, Relu};
use odin_tensor::optim::{Adam, Optimizer};
use odin_tensor::{loss, Layer, Sequential, Tensor};
use rand::rngs::StdRng;

use crate::ae::AeConfig;
use crate::common::{per_sample_bce, sample_batch};

/// An adversarial autoencoder: encoder, decoder, and latent discriminator.
pub struct AdversarialAe {
    cfg: AeConfig,
    encoder: Sequential,
    decoder: Sequential,
    latent_disc: Sequential,
    opt_enc: Adam,
    opt_dec: Adam,
    opt_disc: Adam,
}

/// Losses from one adversarial training step.
#[derive(Debug, Clone, Copy)]
pub struct AaeStepLosses {
    /// Pixel-wise reconstruction loss.
    pub recon: f32,
    /// Latent discriminator loss (real + fake).
    pub disc: f32,
    /// Encoder adversarial loss (fooling the discriminator).
    pub adv: f32,
}

impl AdversarialAe {
    /// Builds an untrained adversarial AE.
    pub fn new(cfg: AeConfig, rng: &mut StdRng) -> Self {
        let n = cfg.channels * cfg.size * cfg.size;
        let encoder = Sequential::new()
            .push(Flatten::new())
            .push(Dense::new(n, cfg.hidden, rng))
            .push(Relu::new())
            .push(Dense::new(cfg.hidden, cfg.latent, rng));
        let decoder = Sequential::new()
            .push(Dense::new(cfg.latent, cfg.hidden, rng))
            .push(Relu::new())
            .push(Dense::new(cfg.hidden, n, rng));
        let latent_disc = Sequential::new()
            .push(Dense::new(cfg.latent, 64, rng))
            .push(LeakyRelu::default())
            .push(Dense::new(64, 1, rng));
        AdversarialAe {
            cfg,
            encoder,
            decoder,
            latent_disc,
            opt_enc: Adam::with_betas(cfg.lr, 0.5, 0.999),
            opt_dec: Adam::with_betas(cfg.lr, 0.5, 0.999),
            opt_disc: Adam::with_betas(cfg.lr, 0.5, 0.999),
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &AeConfig {
        &self.cfg
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.encoder.num_params() + self.decoder.num_params() + self.latent_disc.num_params()
    }

    /// Encodes a `[B, C, s, s]` batch into `[B, latent]`.
    pub fn encode(&mut self, batch: &Tensor) -> Tensor {
        self.encoder.forward(batch, false)
    }

    /// Reconstruction logits for a batch.
    pub fn reconstruct_logits(&mut self, batch: &Tensor) -> Tensor {
        let z = self.encoder.forward(batch, false);
        self.decoder.forward(&z, false)
    }

    /// Per-sample reconstruction error.
    pub fn reconstruction_errors(&mut self, batch: &Tensor) -> Vec<f32> {
        let b = batch.shape()[0];
        let n = self.cfg.channels * self.cfg.size * self.cfg.size;
        let flat = batch.reshape(&[b, n]);
        let logits = self.reconstruct_logits(batch);
        per_sample_bce(&logits, &flat)
    }

    /// One adversarial training step on a batch.
    pub fn train_step(&mut self, rng: &mut StdRng, batch: &Tensor) -> AaeStepLosses {
        let b = batch.shape()[0];
        let n = self.cfg.channels * self.cfg.size * self.cfg.size;
        let flat_targets = batch.reshape(&[b, n]);
        let ones = Tensor::ones(&[b, 1]);
        let zeros = Tensor::zeros(&[b, 1]);

        // 1. Reconstruction: update encoder + decoder.
        let z = self.encoder.forward(batch, true);
        let logits = self.decoder.forward(&z, true);
        let (recon, grad) = loss::bce_with_logits(&logits, &flat_targets);
        let gz = self.decoder.backward(&grad);
        self.encoder.backward(&gz);
        self.opt_dec.step(&mut self.decoder.params_grads());
        self.opt_enc.step(&mut self.encoder.params_grads());
        self.decoder.zero_grad();
        self.encoder.zero_grad();

        // 2. Latent discriminator: real = prior samples, fake = encodings.
        let z_prior = randn_latent(rng, b, self.cfg.latent);
        let z_fake = self.encoder.forward(batch, false);
        let d_real = self.latent_disc.forward(&z_prior, true);
        let (l_real, g_real) = loss::bce_with_logits(&d_real, &ones);
        self.latent_disc.backward(&g_real);
        let d_fake = self.latent_disc.forward(&z_fake, true);
        let (l_fake, g_fake) = loss::bce_with_logits(&d_fake, &zeros);
        self.latent_disc.backward(&g_fake);
        self.opt_disc.step(&mut self.latent_disc.params_grads());
        self.latent_disc.zero_grad();
        let disc = l_real + l_fake;

        // 3. Encoder adversarial: make encodings look like the prior.
        let z_adv = self.encoder.forward(batch, true);
        let d_adv = self.latent_disc.forward(&z_adv, true);
        let (adv, g_adv) = loss::bce_with_logits(&d_adv, &ones);
        let gz_adv = self.latent_disc.backward(&g_adv);
        self.encoder.backward(&gz_adv);
        self.opt_enc.step(&mut self.encoder.params_grads());
        self.encoder.zero_grad();
        self.latent_disc.zero_grad(); // gradients flowed through; discard

        AaeStepLosses { recon, disc, adv }
    }

    /// Trains on random mini-batches; returns per-iteration losses.
    pub fn train(
        &mut self,
        rng: &mut StdRng,
        images: &[Image],
        iters: usize,
        batch_size: usize,
    ) -> Vec<AaeStepLosses> {
        (0..iters)
            .map(|_| {
                let batch = sample_batch(rng, images, batch_size, self.cfg.size);
                self.train_step(rng, &batch)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odin_data::digits::digit_dataset;
    use odin_data::Image;
    use rand::SeedableRng;

    fn small_cfg() -> AeConfig {
        AeConfig { channels: 1, size: 28, hidden: 64, latent: 8, lr: 2e-3 }
    }

    fn moment_gap(z: &Tensor) -> f32 {
        let mean = z.mean();
        let var = z.map(|v| (v - mean) * (v - mean)).mean();
        mean.abs() + (var.sqrt() - 1.0).abs()
    }

    #[test]
    fn training_reduces_recon_loss() {
        let mut rng = StdRng::seed_from_u64(0);
        let data: Vec<Image> =
            digit_dataset(&mut rng, &[0, 1], 30).into_iter().map(|s| s.image).collect();
        let mut aae = AdversarialAe::new(small_cfg(), &mut rng);
        let trace = aae.train(&mut rng, &data, 100, 16);
        let head: f32 = trace[..10].iter().map(|l| l.recon).sum::<f32>() / 10.0;
        let tail: f32 = trace[trace.len() - 10..].iter().map(|l| l.recon).sum::<f32>() / 10.0;
        assert!(tail < head, "recon loss did not drop: {head} -> {tail}");
    }

    #[test]
    fn latent_matches_prior_better_than_plain_ae() {
        // The smoothness constraint (§2.3): after adversarial training the
        // encoded latents should be closer to N(0,1) than a plain AE's.
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<Image> =
            digit_dataset(&mut rng, &[0, 1, 2], 40).into_iter().map(|s| s.image).collect();

        let mut aae = AdversarialAe::new(small_cfg(), &mut rng);
        aae.train(&mut rng, &data, 300, 16);

        let mut ae = crate::ae::Autoencoder::new(small_cfg(), &mut rng);
        ae.train(&mut rng, &data, 300, 16);

        let test = Image::batch(&data[..30]);
        let gap_aae = moment_gap(&aae.encode(&test));
        let gap_ae = moment_gap(&ae.encode(&test));
        assert!(gap_aae < gap_ae, "AAE latent gap {gap_aae} should be below AE gap {gap_ae}");
    }

    #[test]
    fn losses_stay_finite() {
        let mut rng = StdRng::seed_from_u64(2);
        let data: Vec<Image> =
            digit_dataset(&mut rng, &[5], 10).into_iter().map(|s| s.image).collect();
        let mut aae = AdversarialAe::new(small_cfg(), &mut rng);
        for l in aae.train(&mut rng, &data, 50, 8) {
            assert!(l.recon.is_finite() && l.disc.is_finite() && l.adv.is_finite());
        }
    }
}

//! Shared helpers for the generative models: per-sample losses and batch
//! preparation.

use odin_data::Image;
use odin_tensor::ops::sigmoid;
use odin_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Per-sample binary cross-entropy of sigmoid(logits) against targets.
///
/// Inputs are `[B, ...]`; the result has one loss per batch row. This is
/// what the DRAE baseline and the Figure-5 experiment need: the
/// *distribution* of reconstruction errors, not just the mean.
pub fn per_sample_bce(logits: &Tensor, targets: &Tensor) -> Vec<f32> {
    assert_eq!(logits.shape(), targets.shape(), "per_sample_bce shape mismatch");
    assert!(logits.ndim() >= 2, "per_sample_bce expects a batch dimension");
    let b = logits.shape()[0];
    let per = logits.numel() / b;
    let ld = logits.data();
    let td = targets.data();
    (0..b)
        .map(|i| {
            let mut acc = 0.0f32;
            for j in i * per..(i + 1) * per {
                let (x, t) = (ld[j], td[j]);
                acc += x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln();
            }
            acc / per as f32
        })
        .collect()
}

/// Per-sample mean squared error between sigmoid(logits) and targets.
pub fn per_sample_recon_mse(logits: &Tensor, targets: &Tensor) -> Vec<f32> {
    assert_eq!(logits.shape(), targets.shape(), "per_sample_recon_mse shape mismatch");
    let b = logits.shape()[0];
    let per = logits.numel() / b;
    let ld = logits.data();
    let td = targets.data();
    (0..b)
        .map(|i| {
            let mut acc = 0.0f32;
            for j in i * per..(i + 1) * per {
                let d = sigmoid(ld[j]) - td[j];
                acc += d * d;
            }
            acc / per as f32
        })
        .collect()
}

/// Prepares a `[B, C, s, s]` batch from images, resizing to `s`×`s` if
/// needed.
pub fn batch_resized(images: &[&Image], s: usize) -> Tensor {
    assert!(!images.is_empty(), "cannot batch zero images");
    let resized: Vec<Image> = images
        .iter()
        .map(|im| {
            if im.height() == s && im.width() == s {
                (*im).clone()
            } else {
                im.resize_nearest(s, s)
            }
        })
        .collect();
    Image::batch(&resized)
}

/// Gaussian noise tensor with the same shape as `like`.
pub fn gaussian_like(rng: &mut StdRng, like: &Tensor, std: f32) -> Tensor {
    odin_tensor::init::normal(rng, like.shape(), std)
}

/// Samples a random mini-batch (with replacement) of size `n` from a
/// dataset of images, resized to `s`.
pub fn sample_batch(rng: &mut StdRng, images: &[Image], n: usize, s: usize) -> Tensor {
    assert!(!images.is_empty(), "cannot sample from an empty dataset");
    let picks: Vec<&Image> = (0..n).map(|_| &images[rng.gen_range(0..images.len())]).collect();
    batch_resized(&picks, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn per_sample_bce_separates_good_and_bad_rows() {
        // Row 0 predicts targets perfectly; row 1 is maximally wrong.
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, 10.0], &[2, 2]);
        let targets = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[2, 2]);
        let errs = per_sample_bce(&logits, &targets);
        assert!(errs[0] < 0.01);
        assert!(errs[1] > 5.0);
    }

    #[test]
    fn per_sample_mse_matches_manual() {
        let logits = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]);
        let targets = Tensor::from_vec(vec![0.5, 1.0], &[1, 2]);
        let errs = per_sample_recon_mse(&logits, &targets);
        assert!((errs[0] - 0.125).abs() < 1e-6); // (0^2 + 0.5^2)/2
    }

    #[test]
    fn batch_resized_standardizes() {
        let a = Image::new(1, 28, 28);
        let b = Image::new(1, 32, 32);
        let t = batch_resized(&[&a, &b], 32);
        assert_eq!(t.shape(), &[2, 1, 32, 32]);
    }

    #[test]
    fn sample_batch_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let imgs = vec![Image::new(3, 48, 48); 4];
        let t = sample_batch(&mut rng, &imgs, 7, 48);
        assert_eq!(t.shape(), &[7, 3, 48, 48]);
    }
}

//! The standard autoencoder (§2.3 of the paper).
//!
//! Dense encoder/decoder trained with pixel-wise BCE. This is both the
//! weakest drift-detection baseline (its latent space has "holes") and
//! the reconstruction-error engine behind the DRAE baseline and the
//! Figure-5 projection-failure experiment.

use odin_data::Image;
use odin_tensor::layers::{Dense, Flatten, Relu};
use odin_tensor::optim::{Adam, Optimizer};
use odin_tensor::{loss, Layer, Sequential, Tensor};
use rand::rngs::StdRng;

use crate::common::{per_sample_bce, sample_batch};

/// Configuration of a dense autoencoder.
#[derive(Debug, Clone, Copy)]
pub struct AeConfig {
    /// Input channels (1 or 3).
    pub channels: usize,
    /// Input side length (images are resized to `size`×`size`).
    pub size: usize,
    /// Hidden layer width.
    pub hidden: usize,
    /// Latent dimensionality.
    pub latent: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl AeConfig {
    /// The Figure-5 configuration for 28×28 digits: dense 512→128→64.
    pub fn digits() -> Self {
        AeConfig { channels: 1, size: 28, hidden: 256, latent: 64, lr: 1e-3 }
    }

    /// A configuration for 32×32 color images.
    pub fn cifar() -> Self {
        AeConfig { channels: 3, size: 32, hidden: 256, latent: 64, lr: 1e-3 }
    }

    fn input_dim(&self) -> usize {
        self.channels * self.size * self.size
    }
}

/// A dense autoencoder with an explicit encoder/decoder split.
pub struct Autoencoder {
    cfg: AeConfig,
    encoder: Sequential,
    decoder: Sequential,
    opt_enc: Adam,
    opt_dec: Adam,
}

impl Autoencoder {
    /// Builds an untrained autoencoder.
    pub fn new(cfg: AeConfig, rng: &mut StdRng) -> Self {
        let n = cfg.input_dim();
        let encoder = Sequential::new()
            .push(Flatten::new())
            .push(Dense::new(n, cfg.hidden, rng))
            .push(Relu::new())
            .push(Dense::new(cfg.hidden, cfg.latent, rng));
        let decoder = Sequential::new()
            .push(Dense::new(cfg.latent, cfg.hidden, rng))
            .push(Relu::new())
            .push(Dense::new(cfg.hidden, n, rng));
        Autoencoder {
            cfg,
            encoder,
            decoder,
            opt_enc: Adam::new(cfg.lr),
            opt_dec: Adam::new(cfg.lr),
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &AeConfig {
        &self.cfg
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.encoder.num_params() + self.decoder.num_params()
    }

    /// Encodes a `[B, C, s, s]` batch into `[B, latent]`.
    pub fn encode(&mut self, batch: &Tensor) -> Tensor {
        self.encoder.forward(batch, false)
    }

    /// Reconstruction logits for a batch (apply sigmoid for pixels).
    pub fn reconstruct_logits(&mut self, batch: &Tensor) -> Tensor {
        let z = self.encoder.forward(batch, false);
        self.decoder.forward(&z, false)
    }

    /// One gradient step on a batch; returns the reconstruction loss.
    pub fn train_step(&mut self, batch: &Tensor) -> f32 {
        let b = batch.shape()[0];
        let flat_targets = batch.reshape(&[b, self.cfg.input_dim()]);
        let z = self.encoder.forward(batch, true);
        let logits = self.decoder.forward(&z, true);
        let (l, grad) = loss::bce_with_logits(&logits, &flat_targets);
        let gz = self.decoder.backward(&grad);
        self.encoder.backward(&gz);
        self.opt_dec.step(&mut self.decoder.params_grads());
        self.opt_enc.step(&mut self.encoder.params_grads());
        self.decoder.zero_grad();
        self.encoder.zero_grad();
        l
    }

    /// Trains on random mini-batches drawn from `images`.
    ///
    /// Returns the loss trace (one value per iteration).
    pub fn train(
        &mut self,
        rng: &mut StdRng,
        images: &[Image],
        iters: usize,
        batch_size: usize,
    ) -> Vec<f32> {
        (0..iters)
            .map(|_| {
                let batch = sample_batch(rng, images, batch_size, self.cfg.size);
                self.train_step(&batch)
            })
            .collect()
    }

    /// Exports encoder+decoder parameters as one flat buffer.
    pub fn export_params(&self) -> Vec<f32> {
        let mut out = self.encoder.export_params();
        out.extend(self.decoder.export_params());
        out
    }

    /// Imports a buffer produced by [`Autoencoder::export_params`] on an
    /// identically configured model.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length does not match.
    pub fn import_params(&mut self, flat: &[f32]) {
        let n_enc = self.encoder.export_len();
        assert_eq!(
            flat.len(),
            self.encoder.export_len() + self.decoder.export_len(),
            "AE parameter buffer length mismatch"
        );
        self.encoder.import_params(&flat[..n_enc]);
        self.decoder.import_params(&flat[n_enc..]);
    }

    /// Per-sample reconstruction error (mean BCE per image) — the DRAE
    /// drift signal.
    pub fn reconstruction_errors(&mut self, batch: &Tensor) -> Vec<f32> {
        let b = batch.shape()[0];
        let flat_targets = batch.reshape(&[b, self.cfg.input_dim()]);
        let logits = self.reconstruct_logits(batch);
        per_sample_bce(&logits, &flat_targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odin_data::digits::{digit_dataset, gen_digit};
    use odin_data::Image;
    use rand::SeedableRng;

    fn small_cfg() -> AeConfig {
        AeConfig { channels: 1, size: 28, hidden: 64, latent: 16, lr: 2e-3 }
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(0);
        let data: Vec<Image> =
            digit_dataset(&mut rng, &[0, 1, 2], 30).into_iter().map(|s| s.image).collect();
        let mut ae = Autoencoder::new(small_cfg(), &mut rng);
        let trace = ae.train(&mut rng, &data, 80, 16);
        let head: f32 = trace[..10].iter().sum::<f32>() / 10.0;
        let tail: f32 = trace[trace.len() - 10..].iter().sum::<f32>() / 10.0;
        assert!(tail < head * 0.9, "loss did not drop: {head} -> {tail}");
    }

    #[test]
    fn outliers_have_higher_reconstruction_error() {
        // The Figure-5 experiment in miniature: train on digits 0-2, test
        // on unseen digits; unseen digits should reconstruct worse.
        let mut rng = StdRng::seed_from_u64(1);
        let train: Vec<Image> =
            digit_dataset(&mut rng, &[0, 1, 2], 40).into_iter().map(|s| s.image).collect();
        let mut ae = Autoencoder::new(small_cfg(), &mut rng);
        ae.train(&mut rng, &train, 250, 16);
        let inliers: Vec<Image> = (0..20).map(|i| gen_digit(&mut rng, (i % 3) as u8)).collect();
        let outliers: Vec<Image> =
            (0..20).map(|i| gen_digit(&mut rng, 3 + (i % 7) as u8)).collect();
        let ib = Image::batch(&inliers);
        let ob = Image::batch(&outliers);
        let ie: f32 = ae.reconstruction_errors(&ib).iter().sum::<f32>() / 20.0;
        let oe: f32 = ae.reconstruction_errors(&ob).iter().sum::<f32>() / 20.0;
        assert!(oe > ie, "outlier error {oe} should exceed inlier error {ie}");
    }

    #[test]
    fn encode_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ae = Autoencoder::new(small_cfg(), &mut rng);
        let batch = Image::batch(&vec![Image::new(1, 28, 28); 3]);
        let z = ae.encode(&batch);
        assert_eq!(z.shape(), &[3, 16]);
    }

    #[test]
    fn param_count_is_positive_and_stable() {
        let mut rng = StdRng::seed_from_u64(3);
        let ae = Autoencoder::new(small_cfg(), &mut rng);
        let n = 28 * 28;
        let expected = (n * 64 + 64) + (64 * 16 + 16) + (16 * 64 + 64) + (64 * n + n);
        assert_eq!(ae.num_params(), expected);
    }
}

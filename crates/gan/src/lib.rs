//! # odin-gan
//!
//! The generative models of ODIN's drift DETECTOR:
//!
//! * [`ae::Autoencoder`] — the standard dense autoencoder (baseline;
//!   exhibits latent-space holes, Figure 2a),
//! * [`aae::AdversarialAe`] — the adversarial autoencoder (smooth latent
//!   space via a latent discriminator, Figure 2b),
//! * [`dagan::DaGan`] — the paper's **Dual-Adversarial GAN** (Figure 2c,
//!   §4.3): an adversarial AE plus an image discriminator, trained with
//!   Algorithm 1. Its encoder is the distance-preserving projection ODIN
//!   uses for clustering and Δ-band drift detection.
//!
//! [`diagnostics`] quantifies the latent-space-quality claims of
//! Figure 2.

#![warn(missing_docs)]

pub mod aae;
pub mod ae;
pub mod common;
pub mod dagan;
pub mod diagnostics;

pub use aae::{AaeStepLosses, AdversarialAe};
pub use ae::{AeConfig, Autoencoder};
pub use dagan::{DaGan, DaGanConfig, DaGanLosses};

//! The Dual-Adversarial GAN (§4.3–§4.4, Figures 6–7 of the paper).
//!
//! Four components: a convolutional encoder `E`, a decoder/generator `G`,
//! a latent discriminator `D_Z` that pins the latent space to a normal
//! prior (Equation 3), and an image discriminator `D_I` that forces
//! high-fidelity reconstructions (Equation 4). Training follows
//! Algorithm 1 verbatim: per iteration the image discriminator, decoder,
//! latent discriminator, encoder, and finally the autoencoder pair are
//! updated in sequence, with the reconstruction loss weighted by
//! `λ_R = 0.5 · λ_Z` (§4.4).
//!
//! After training, only the encoder is used: it is ODIN's
//! distance-preserving projection from pixels to the low-dimensional
//! manifold on which Δ-bands and KL divergence are computed.

use odin_data::Image;
use odin_tensor::init::randn_latent;
use odin_tensor::layers::{Conv2d, Dense, Flatten, LeakyRelu, Relu, Reshape, Upsample2};
use odin_tensor::optim::{Adam, Optimizer};
use odin_tensor::{loss, Layer, Sequential, Tensor};
use rand::rngs::StdRng;

use crate::common::{per_sample_bce, sample_batch};

/// Configuration of a DA-GAN.
#[derive(Debug, Clone, Copy)]
pub struct DaGanConfig {
    /// Input channels (1 or 3).
    pub channels: usize,
    /// Input side length; must be divisible by 8 (three stride-2 stages).
    pub size: usize,
    /// Latent dimensionality (the encoder's channel count after global
    /// average pooling).
    pub latent: usize,
    /// Base convolution width; the encoder uses `width`, `2·width`,
    /// `latent` channels.
    pub width: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Reconstruction weight λ_R. The paper sets λ_Z = λ_I = 1 and
    /// λ_R = 0.5.
    pub lambda_r: f32,
    /// Standard deviation of input noise for the reconstruction step
    /// (denoising objective). 0 disables it. Denoising forces the encoder
    /// to capture content rather than pixel identity — at this model
    /// scale it substitutes for the feature quality the paper gets from
    /// ResNet capacity and 100-epoch training.
    pub denoise_std: f32,
}

impl DaGanConfig {
    /// Configuration for 32×32 grayscale digit images.
    pub fn digits() -> Self {
        DaGanConfig {
            channels: 1,
            size: 32,
            latent: 32,
            width: 8,
            lr: 1e-3,
            lambda_r: 0.5,
            denoise_std: 0.25,
        }
    }

    /// Configuration for 32×32 color images.
    pub fn cifar() -> Self {
        DaGanConfig {
            channels: 3,
            size: 32,
            latent: 48,
            width: 12,
            lr: 1e-3,
            lambda_r: 0.5,
            denoise_std: 0.25,
        }
    }

    /// Configuration for 48×48 BDD-sim frames.
    pub fn bdd() -> Self {
        DaGanConfig {
            channels: 3,
            size: 48,
            latent: 64,
            width: 12,
            lr: 1e-3,
            lambda_r: 0.5,
            denoise_std: 0.25,
        }
    }
}

/// Losses from one Algorithm-1 iteration.
#[derive(Debug, Clone, Copy)]
pub struct DaGanLosses {
    /// Image discriminator loss (L_I, Equation 4).
    pub image_disc: f32,
    /// Decoder adversarial loss (fooling D_I).
    pub decoder_adv: f32,
    /// Latent discriminator loss (L_Z, Equation 3).
    pub latent_disc: f32,
    /// Encoder adversarial loss (fooling D_Z).
    pub encoder_adv: f32,
    /// Weighted reconstruction loss (λ_R · L_R, Equation 5).
    pub recon: f32,
}

impl DaGanLosses {
    /// True if every component is finite.
    pub fn is_finite(&self) -> bool {
        self.image_disc.is_finite()
            && self.decoder_adv.is_finite()
            && self.latent_disc.is_finite()
            && self.encoder_adv.is_finite()
            && self.recon.is_finite()
    }
}

/// The dual-adversarial GAN.
pub struct DaGan {
    cfg: DaGanConfig,
    encoder: Sequential,
    decoder: Sequential,
    latent_disc: Sequential,
    image_disc: Sequential,
    opt_enc: Adam,
    opt_dec: Adam,
    opt_zdisc: Adam,
    opt_idisc: Adam,
}

impl DaGan {
    /// Builds an untrained DA-GAN.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.size` is not divisible by 8.
    pub fn new(cfg: DaGanConfig, rng: &mut StdRng) -> Self {
        assert_eq!(cfg.size % 8, 0, "DA-GAN input size must be divisible by 8");
        let s8 = cfg.size / 8;
        let w = cfg.width;

        // Conv pyramid, then a dense projection of the *flattened*
        // feature map to the latent. (A per-channel global pool, as in
        // the paper's Figure 7, works at ResNet scale where channels are
        // plentiful; at this scale it discards the spatial structure the
        // latent must preserve to stay distance-preserving.)
        let encoder = Sequential::new()
            .push(Conv2d::k3(cfg.channels, w, 2, rng))
            .push(LeakyRelu::default())
            .push(Conv2d::k3(w, 2 * w, 2, rng))
            .push(LeakyRelu::default())
            .push(Conv2d::k3(2 * w, 2 * w, 2, rng))
            .push(LeakyRelu::default())
            .push(Flatten::new())
            .push(Dense::new(2 * w * s8 * s8, cfg.latent, rng));

        let decoder = Sequential::new()
            .push(Dense::new(cfg.latent, 2 * w * s8 * s8, rng))
            .push(Relu::new())
            .push(Reshape::new(2 * w, s8, s8))
            .push(Upsample2::new())
            .push(Conv2d::k3(2 * w, w, 1, rng))
            .push(LeakyRelu::default())
            .push(Upsample2::new())
            .push(Conv2d::k3(w, w, 1, rng))
            .push(LeakyRelu::default())
            .push(Upsample2::new())
            .push(Conv2d::k3(w, cfg.channels, 1, rng));

        let latent_disc = Sequential::new()
            .push(Dense::new(cfg.latent, 64, rng))
            .push(LeakyRelu::default())
            .push(Dense::new(64, 1, rng));

        let s4 = cfg.size / 4;
        let image_disc = Sequential::new()
            .push(Conv2d::k3(cfg.channels, w, 2, rng))
            .push(LeakyRelu::default())
            .push(Conv2d::k3(w, w, 2, rng))
            .push(LeakyRelu::default())
            .push(Flatten::new())
            .push(Dense::new(w * s4 * s4, 1, rng));

        // GAN-conventional Adam betas (0.5, 0.999).
        DaGan {
            cfg,
            encoder,
            decoder,
            latent_disc,
            image_disc,
            opt_enc: Adam::with_betas(cfg.lr, 0.5, 0.999),
            opt_dec: Adam::with_betas(cfg.lr, 0.5, 0.999),
            opt_zdisc: Adam::with_betas(cfg.lr, 0.5, 0.999),
            opt_idisc: Adam::with_betas(cfg.lr, 0.5, 0.999),
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &DaGanConfig {
        &self.cfg
    }

    /// Total trainable parameters across all four components.
    pub fn num_params(&self) -> usize {
        self.encoder.num_params()
            + self.decoder.num_params()
            + self.latent_disc.num_params()
            + self.image_disc.num_params()
    }

    /// Encoder parameter count — what ODIN actually deploys at inference
    /// time.
    pub fn encoder_params(&self) -> usize {
        self.encoder.num_params()
    }

    /// Projects a `[B, C, s, s]` batch to the `[B, latent]` manifold.
    pub fn encode(&mut self, batch: &Tensor) -> Tensor {
        self.encoder.forward(batch, false)
    }

    /// Projects a slice of images (resized to the model's input size).
    ///
    /// Internally processes fixed-size chunks so im2col scratch stays
    /// bounded for arbitrarily large inputs. Conv and dense kernels
    /// compute each output row independently, so the chunked result is
    /// bit-identical to a single monolithic batch.
    pub fn encode_images(&mut self, images: &[&Image]) -> Tensor {
        const CHUNK: usize = 32;
        if images.len() <= CHUNK {
            let batch = crate::common::batch_resized(images, self.cfg.size);
            return self.encode(&batch);
        }
        let latent = self.cfg.latent;
        let mut out = Vec::with_capacity(images.len() * latent);
        for chunk in images.chunks(CHUNK) {
            let batch = crate::common::batch_resized(chunk, self.cfg.size);
            out.extend_from_slice(self.encode(&batch).data());
        }
        Tensor::from_vec(out, &[images.len(), latent])
    }

    /// Decodes latent vectors to image logits.
    pub fn decode(&mut self, z: &Tensor) -> Tensor {
        self.decoder.forward(z, false)
    }

    /// Reconstruction logits `G(E(x))`.
    pub fn reconstruct_logits(&mut self, batch: &Tensor) -> Tensor {
        let z = self.encoder.forward(batch, false);
        self.decoder.forward(&z, false)
    }

    /// Per-sample reconstruction error.
    pub fn reconstruction_errors(&mut self, batch: &Tensor) -> Vec<f32> {
        let logits = self.reconstruct_logits(batch);
        per_sample_bce(&logits, batch)
    }

    /// One Algorithm-1 training iteration on a batch.
    pub fn train_step(&mut self, rng: &mut StdRng, batch: &Tensor) -> DaGanLosses {
        let b = batch.shape()[0];
        let ones = Tensor::ones(&[b, 1]);
        let zeros = Tensor::zeros(&[b, 1]);

        // Mini-batches (Alg. 1 lines 3-4).
        let z_prior = randn_latent(rng, b, self.cfg.latent);
        let x_fake_logits = self.decoder.forward(&z_prior, false);
        let x_fake = x_fake_logits.map(odin_tensor::ops::sigmoid);

        // Update the image discriminator (lines 5-7).
        let di_real = self.image_disc.forward(batch, true);
        let (l_real, g_real) = loss::bce_with_logits(&di_real, &ones);
        self.image_disc.backward(&g_real);
        let di_fake = self.image_disc.forward(&x_fake, true);
        let (l_fake, g_fake) = loss::bce_with_logits(&di_fake, &zeros);
        self.image_disc.backward(&g_fake);
        self.opt_idisc.step(&mut self.image_disc.params_grads());
        self.image_disc.zero_grad();
        let image_disc = l_real + l_fake;

        // Update the decoder to fool D_I (line 8).
        let x_gen_logits = self.decoder.forward(&z_prior, true);
        let x_gen = x_gen_logits.map(odin_tensor::ops::sigmoid);
        let di_gen = self.image_disc.forward(&x_gen, true);
        let (decoder_adv, g_adv) = loss::bce_with_logits(&di_gen, &ones);
        let g_img = self.image_disc.backward(&g_adv);
        // Chain through the sigmoid between decoder logits and D_I input.
        let g_logits = g_img.zip(&x_gen, |g, s| g * s * (1.0 - s));
        self.decoder.backward(&g_logits);
        self.opt_dec.step(&mut self.decoder.params_grads());
        self.decoder.zero_grad();
        self.image_disc.zero_grad();

        // Update the latent discriminator (lines 9-11).
        let z_enc = self.encoder.forward(batch, false);
        let dz_real = self.latent_disc.forward(&z_prior, true);
        let (lz_real, gz_real) = loss::bce_with_logits(&dz_real, &ones);
        self.latent_disc.backward(&gz_real);
        let dz_fake = self.latent_disc.forward(&z_enc, true);
        let (lz_fake, gz_fake) = loss::bce_with_logits(&dz_fake, &zeros);
        self.latent_disc.backward(&gz_fake);
        self.opt_zdisc.step(&mut self.latent_disc.params_grads());
        self.latent_disc.zero_grad();
        let latent_disc = lz_real + lz_fake;

        // Update the encoder to fool D_Z (line 12).
        let z_enc2 = self.encoder.forward(batch, true);
        let dz_enc = self.latent_disc.forward(&z_enc2, true);
        let (encoder_adv, g_enc) = loss::bce_with_logits(&dz_enc, &ones);
        let gz = self.latent_disc.backward(&g_enc);
        self.encoder.backward(&gz);
        self.opt_enc.step(&mut self.encoder.params_grads());
        self.encoder.zero_grad();
        self.latent_disc.zero_grad();

        // Update encoder + decoder on reconstruction (line 13),
        // weighted by λ_R. With `denoise_std > 0` the encoder sees a
        // corrupted input but must reconstruct the clean image.
        let enc_input = if self.cfg.denoise_std > 0.0 {
            let noise = crate::common::gaussian_like(rng, batch, self.cfg.denoise_std);
            batch.add(&noise).clamp(0.0, 1.0)
        } else {
            batch.clone()
        };
        let z_rec = self.encoder.forward(&enc_input, true);
        let rec_logits = self.decoder.forward(&z_rec, true);
        let (l_rec, g_rec) = loss::bce_with_logits(&rec_logits, batch);
        let g_rec = g_rec.scale(self.cfg.lambda_r);
        let gz_rec = self.decoder.backward(&g_rec);
        self.encoder.backward(&gz_rec);
        self.opt_dec.step(&mut self.decoder.params_grads());
        self.opt_enc.step(&mut self.encoder.params_grads());
        self.decoder.zero_grad();
        self.encoder.zero_grad();
        let recon = self.cfg.lambda_r * l_rec;

        DaGanLosses { image_disc, decoder_adv, latent_disc, encoder_adv, recon }
    }

    /// Serialized buffer length (parameters + non-trainable state).
    pub fn export_len(&self) -> usize {
        self.encoder.export_len()
            + self.decoder.export_len()
            + self.latent_disc.export_len()
            + self.image_disc.export_len()
    }

    /// Exports all four components' parameters (and non-trainable state)
    /// as one flat buffer (for caching trained models across experiment
    /// runs).
    pub fn export_params(&self) -> Vec<f32> {
        let mut out = self.encoder.export_params();
        out.extend(self.decoder.export_params());
        out.extend(self.latent_disc.export_params());
        out.extend(self.image_disc.export_params());
        out
    }

    /// Imports a buffer produced by [`DaGan::export_params`] on an
    /// identically configured model.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length does not match this model's parameter
    /// count.
    pub fn import_params(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.export_len(), "DA-GAN parameter buffer length mismatch");
        let mut offset = 0;
        for net in
            [&mut self.encoder, &mut self.decoder, &mut self.latent_disc, &mut self.image_disc]
        {
            let n = net.export_len();
            net.import_params(&flat[offset..offset + n]);
            offset += n;
        }
    }

    /// Trains on random mini-batches; returns per-iteration losses.
    pub fn train(
        &mut self,
        rng: &mut StdRng,
        images: &[Image],
        iters: usize,
        batch_size: usize,
    ) -> Vec<DaGanLosses> {
        (0..iters)
            .map(|_| {
                let batch = sample_batch(rng, images, batch_size, self.cfg.size);
                self.train_step(rng, &batch)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odin_data::digits::digit_dataset;
    use odin_data::Image;
    use rand::SeedableRng;

    fn tiny_cfg() -> DaGanConfig {
        DaGanConfig {
            channels: 1,
            size: 32,
            latent: 16,
            width: 6,
            lr: 1.5e-3,
            lambda_r: 0.5,
            denoise_std: 0.25,
        }
    }

    #[test]
    #[should_panic(expected = "divisible by 8")]
    fn bad_size_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = DaGanConfig { size: 30, ..tiny_cfg() };
        let _ = DaGan::new(cfg, &mut rng);
    }

    #[test]
    fn encode_shape_and_determinism() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = DaGan::new(tiny_cfg(), &mut rng);
        let batch = Image::batch(&vec![Image::new(1, 32, 32); 2]);
        let z1 = g.encode(&batch);
        let z2 = g.encode(&batch);
        assert_eq!(z1.shape(), &[2, 16]);
        assert_eq!(z1.data(), z2.data());
    }

    #[test]
    fn losses_are_finite_through_training() {
        let mut rng = StdRng::seed_from_u64(2);
        let data: Vec<Image> =
            digit_dataset(&mut rng, &[0, 1], 20).into_iter().map(|s| s.image).collect();
        let mut g = DaGan::new(tiny_cfg(), &mut rng);
        for l in g.train(&mut rng, &data, 30, 8) {
            assert!(l.is_finite(), "non-finite loss: {l:?}");
        }
    }

    #[test]
    fn training_improves_reconstruction() {
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<Image> =
            digit_dataset(&mut rng, &[0, 1, 2], 30).into_iter().map(|s| s.image).collect();
        let mut g = DaGan::new(tiny_cfg(), &mut rng);
        let trace = g.train(&mut rng, &data, 120, 8);
        let head: f32 = trace[..10].iter().map(|l| l.recon).sum::<f32>() / 10.0;
        let tail: f32 = trace[trace.len() - 10..].iter().map(|l| l.recon).sum::<f32>() / 10.0;
        assert!(tail < head, "recon loss did not drop: {head} -> {tail}");
    }

    #[test]
    fn latent_separates_known_classes() {
        // After training on two visually distinct digit classes, within-
        // class latent distances should be smaller than cross-class ones.
        let mut rng = StdRng::seed_from_u64(4);
        let data: Vec<Image> =
            digit_dataset(&mut rng, &[0, 1], 40).into_iter().map(|s| s.image).collect();
        let mut g = DaGan::new(tiny_cfg(), &mut rng);
        g.train(&mut rng, &data, 200, 8);

        let zeros: Vec<Image> =
            digit_dataset(&mut rng, &[0], 15).into_iter().map(|s| s.image).collect();
        let ones: Vec<Image> =
            digit_dataset(&mut rng, &[1], 15).into_iter().map(|s| s.image).collect();
        let z0 = g.encode(&Image::batch(&zeros));
        let z1 = g.encode(&Image::batch(&ones));
        let centroid = |z: &Tensor| {
            let (b, d) = (z.shape()[0], z.shape()[1]);
            let mut c = vec![0.0f32; d];
            for i in 0..b {
                for (j, cj) in c.iter_mut().enumerate() {
                    *cj += z.get(&[i, j]) / b as f32;
                }
            }
            Tensor::from_vec(c, &[d])
        };
        let c0 = centroid(&z0);
        let c1 = centroid(&z1);
        let within: f32 = (0..15).map(|i| z0.row(i).dist(&c0)).sum::<f32>() / 15.0;
        let between = c0.dist(&c1);
        assert!(
            between > within * 0.8,
            "class centroids too close: between {between}, within {within}"
        );
    }

    #[test]
    fn decode_produces_image_shaped_logits() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = DaGan::new(tiny_cfg(), &mut rng);
        let z = odin_tensor::init::randn_latent(&mut rng, 3, 16);
        let x = g.decode(&z);
        assert_eq!(x.shape(), &[3, 1, 32, 32]);
    }

    #[test]
    fn encoder_is_smaller_than_whole_model() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = DaGan::new(tiny_cfg(), &mut rng);
        assert!(g.encoder_params() < g.num_params());
        assert!(g.encoder_params() > 0);
    }
}

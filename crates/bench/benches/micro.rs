//! Criterion micro-benchmarks for ODIN's hot paths: latent encoding,
//! Δ-band fitting/updating, KL stability checks, outlier scoring
//! (DA-GAN kNN vs LOF), selector policies, NMS, and detector inference.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use odin_core::encoder::{DaGanEncoder, HistogramEncoder, LatentEncoder};
use odin_core::registry::{ClusterModel, ModelKind, ModelRegistry};
use odin_core::selector::{select, SelectionPolicy};
use odin_data::{GtBox, Image, ObjectClass, SceneGen, Subset};
use odin_detect::{nms, Detection, Detector};
use odin_drift::baselines::{LatentKnn, Lof};
use odin_drift::cluster::euclidean;
use odin_drift::kl::{histogram_kl, DistanceHistogram};
use odin_drift::{ClusterManager, DeltaBand, LshIndex, ManagerConfig};
use odin_gan::{DaGan, DaGanConfig};
use odin_tensor::layers::Conv2d;
use odin_tensor::ops::{matmul, matmul_nt, matmul_tn};
use odin_tensor::{Layer, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn sample_frames(n: usize) -> Vec<Image> {
    let gen = SceneGen::new(48);
    let mut rng = StdRng::seed_from_u64(0);
    gen.subset_frames(&mut rng, Subset::Full, n).into_iter().map(|f| f.image).collect()
}

/// GFLOP/s of the blocked matmul kernels and the im2col convolution at
/// hot-path shapes. Absolute numbers (with before/after history) are
/// recorded by the `tensor_gflops` bin into `results/`.
fn bench_tensor_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let rand_t = |rng: &mut StdRng, shape: &[usize]| {
        let n: usize = shape.iter().product();
        Tensor::from_vec((0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect(), shape)
    };
    // im2col-typical shape: [positions, patch] x [out_c, patch]^T.
    let a = rand_t(&mut rng, &[1024, 192]);
    let b = rand_t(&mut rng, &[192, 64]);
    let bt = rand_t(&mut rng, &[64, 192]);
    let at = rand_t(&mut rng, &[192, 1024]);
    c.bench_function("tensor/matmul_1024x192x64", |bch| {
        bch.iter(|| black_box(matmul(black_box(&a), black_box(&b))))
    });
    c.bench_function("tensor/matmul_nt_1024x192x64", |bch| {
        bch.iter(|| black_box(matmul_nt(black_box(&a), black_box(&bt))))
    });
    c.bench_function("tensor/matmul_tn_1024x192x64", |bch| {
        bch.iter(|| black_box(matmul_tn(black_box(&at), black_box(&b))))
    });

    let x = rand_t(&mut rng, &[8, 3, 48, 48]);
    let mut conv = Conv2d::k3(3, 16, 1, &mut rng);
    c.bench_function("tensor/conv2d_fwd_8x3x48x48_k3_16", |bch| {
        bch.iter(|| black_box(conv.infer(black_box(&x))))
    });
    c.bench_function("tensor/conv2d_fwd_bwd_8x3x48x48_k3_16", |bch| {
        bch.iter(|| {
            let y = conv.forward(black_box(&x), true);
            black_box(conv.backward(&y))
        })
    });
}

fn bench_encoding(c: &mut Criterion) {
    let frames = sample_frames(16);
    let refs: Vec<&Image> = frames.iter().collect();
    let mut rng = StdRng::seed_from_u64(1);

    let mut hist = HistogramEncoder::new();
    c.bench_function("encode/histogram_16_frames", |b| {
        b.iter(|| black_box(hist.project_batch(&refs)))
    });

    let mut dagan = DaGanEncoder::new(DaGan::new(DaGanConfig::bdd(), &mut rng));
    c.bench_function("encode/dagan_16_frames", |b| {
        b.iter(|| black_box(dagan.project_batch(&refs)))
    });
}

fn bench_bands_and_kl(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let distances: Vec<f32> = (0..512).map(|_| rng.gen_range(0.0f32..8.0)).collect();
    c.bench_function("band/fit_512_distances", |b| {
        b.iter(|| black_box(DeltaBand::fit(&distances, 0.75)))
    });

    let mut h = DistanceHistogram::new(0.0, 16.0, 32);
    for &d in &distances {
        h.add(d);
    }
    c.bench_function("kl/histogram_update_and_divergence", |b| {
        b.iter_batched(
            || h.clone(),
            |prior| {
                let mut post = prior.clone();
                post.add(3.3);
                black_box(histogram_kl(&prior, &post))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cluster_observe(c: &mut Criterion) {
    let cfg = ManagerConfig {
        min_points: 20,
        stable_window: 5,
        kl_eps: 5e-3,
        ..ManagerConfig::default()
    };
    let mut manager = ClusterManager::new(cfg);
    for (salt, center) in [(0usize, 0.0f32), (1, 8.0), (2, -8.0), (3, 16.0)] {
        let pts: Vec<Vec<f32>> = (0..120)
            .map(|i| (0..32).map(|j| center + ((i * 7 + j * 13 + salt) as f32).sin()).collect())
            .collect();
        manager.bootstrap(&pts);
    }
    let probe: Vec<f32> = (0..32).map(|j| (j as f32).sin()).collect();
    c.bench_function("cluster/observe_with_4_clusters", |b| {
        b.iter(|| black_box(manager.observe(&probe)))
    });
    c.bench_function("selector/delta_band_policy", |b| {
        b.iter(|| black_box(select(SelectionPolicy::DeltaBand, &manager, &probe)))
    });
    c.bench_function("selector/knn_weighted_policy", |b| {
        b.iter(|| black_box(select(SelectionPolicy::KnnWeighted(3), &manager, &probe)))
    });
}

fn bench_outlier_scoring(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let latents: Vec<Vec<f32>> =
        (0..300).map(|_| (0..64).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
    let pixels: Vec<Vec<f32>> =
        (0..300).map(|_| (0..784).map(|_| rng.gen_range(0.0f32..1.0)).collect()).collect();
    let knn = LatentKnn::new(latents, 3);
    let lof = Lof::fit(pixels, 8);
    let zq: Vec<f32> = (0..64).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let pq: Vec<f32> = (0..784).map(|_| rng.gen_range(0.0f32..1.0)).collect();
    c.bench_function("score/latent_knn_64d_300ref", |b| b.iter(|| black_box(knn.score(&zq))));
    c.bench_function("score/lof_784d_300ref", |b| b.iter(|| black_box(lof.score(&pq))));
}

fn bench_detection(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let heavy = Detector::heavy(48, &mut rng);
    let small = Detector::small(48, &mut rng);
    let img = Image::new(3, 48, 48);
    c.bench_function("detect/yolosim_heavy_1_frame", |b| b.iter(|| black_box(heavy.detect(&img))));
    c.bench_function("detect/yolo_specialized_1_frame", |b| {
        b.iter(|| black_box(small.detect(&img)))
    });

    let dets: Vec<Detection> = (0..64)
        .map(|i| Detection {
            bbox: GtBox {
                class: ObjectClass::ALL[i % 5],
                x: (i % 8) as f32 * 5.0,
                y: (i / 8) as f32 * 5.0,
                w: 8.0,
                h: 8.0,
            },
            score: 1.0 - i as f32 / 64.0,
        })
        .collect();
    c.bench_function("detect/nms_64_boxes", |b| {
        b.iter_batched(|| dets.clone(), |d| black_box(nms(d, 0.45)), BatchSize::SmallInput)
    });
}

/// The serving path reads models through a shared (read-write-locked)
/// registry so background SPECIALIZER workers can install models
/// concurrently; this prices the per-frame lock acquisition.
fn bench_shared_registry(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut reg = ModelRegistry::new();
    for id in 0..8 {
        reg.insert(id, ClusterModel::new(Detector::small(48, &mut rng), ModelKind::Specialized));
    }
    let shared = reg.into_shared();
    c.bench_function("registry/shared_read_lookup", |b| {
        b.iter(|| {
            let guard = shared.read();
            black_box(guard.get(3).map(|m| m.kind))
        })
    });
}

/// §7 extension: LSH centroid lookup vs a linear scan, at a cluster
/// count where the paper says DA-GAN lookup starts to hurt.
fn bench_lsh_lookup(c: &mut Criterion) {
    let dim = 64;
    let n = 256;
    let centroids: Vec<Vec<f32>> = (0..n)
        .map(|i| (0..dim).map(|j| ((i * 31 + j * 17) % 101) as f32 / 10.0 - 5.0).collect())
        .collect();
    let mut lsh = LshIndex::new(dim, 4, 10, 7);
    for p in &centroids {
        lsh.insert(p.clone());
    }
    let q: Vec<f32> = (0..dim).map(|j| (j as f32 * 0.3).sin()).collect();
    c.bench_function("lookup/linear_scan_256_centroids", |b| {
        b.iter(|| {
            black_box(
                centroids
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, euclidean(p, &q)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite")),
            )
        })
    });
    c.bench_function("lookup/lsh_256_centroids", |b| b.iter(|| black_box(lsh.nearest(&q))));
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_tensor_kernels, bench_encoding, bench_bands_and_kl,
              bench_cluster_observe, bench_outlier_scoring, bench_detection,
              bench_shared_registry, bench_lsh_lookup
}
criterion_main!(micro);

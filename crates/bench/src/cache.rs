//! Checksummed on-disk cache for trained model parameters.
//!
//! Earlier versions cached raw `f32` blobs validated only by byte
//! length, so a torn write or bit rot silently loaded garbage weights.
//! Cached parameters now live in the `odin-store` checkpoint container:
//! magic + format version + per-section CRC, written atomically. A
//! corrupt or stale cache is *reported and retrained*, never trusted.

use std::path::Path;

use odin_store::checkpoint::write_atomic;
use odin_store::{Checkpoint, CheckpointBuilder, Decoder, Encoder};

/// Section name for the flat parameter buffer.
const PARAMS_SECTION: &str = "params";

/// Loads a cached parameter buffer, validating container CRCs and the
/// expected length. Returns `None` (with the reason on stderr) when the
/// cache is absent, corrupt, or from a different model size — the
/// caller retrains.
pub fn load_params(path: &Path, expected_len: usize) -> Option<Vec<f32>> {
    if !path.exists() {
        return None;
    }
    let cp = match Checkpoint::read(path) {
        Ok(cp) => cp,
        Err(e) => {
            eprintln!("warning: ignoring corrupt cache {}: {e}", path.display());
            return None;
        }
    };
    let section = match cp.require(PARAMS_SECTION) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("warning: ignoring malformed cache {}: {e}", path.display());
            return None;
        }
    };
    let mut dec = Decoder::new(section);
    let params = match dec.take_f32s("cache params").and_then(|p| {
        dec.finish("cache params")?;
        Ok(p)
    }) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("warning: ignoring malformed cache {}: {e}", path.display());
            return None;
        }
    };
    if params.len() != expected_len {
        eprintln!(
            "warning: cache {} holds {} params, model expects {expected_len}; retraining",
            path.display(),
            params.len()
        );
        return None;
    }
    Some(params)
}

/// Stores a parameter buffer in the checksummed container, atomically
/// (tmp + fsync + rename). Failures are warnings — the cache is an
/// optimization, not a requirement.
pub fn store_params(path: &Path, params: &[f32]) {
    let mut enc = Encoder::new();
    enc.put_f32s(params);
    let mut builder = CheckpointBuilder::new();
    builder.section(PARAMS_SECTION, enc.into_bytes());
    if let Err(e) = write_atomic(path, &builder.to_bytes()) {
        eprintln!("warning: could not cache params to {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("odin-bench-cache-{}-{name}.odst", std::process::id()))
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let path = scratch("roundtrip");
        let params: Vec<f32> = (0..513).map(|i| (i as f32 * 0.917).sin()).collect();
        store_params(&path, &params);
        let back = load_params(&path, params.len()).expect("cache readable");
        let a: Vec<u32> = params.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = back.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_length_is_rejected() {
        let path = scratch("wrong-len");
        store_params(&path, &[1.0, 2.0, 3.0]);
        assert!(load_params(&path, 4).is_none(), "length mismatch must invalidate");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_is_rejected() {
        let path = scratch("corrupt");
        store_params(&path, &[5.0; 64]);
        let mut bytes = std::fs::read(&path).expect("read cache");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).expect("corrupt cache");
        assert!(load_params(&path, 64).is_none(), "bit flip must invalidate");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_none() {
        assert!(load_params(Path::new("/nonexistent/cache.odst"), 8).is_none());
    }
}

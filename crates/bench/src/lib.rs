//! # odin-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! ODIN paper's evaluation (§6). Each experiment is a binary:
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig1_motivating` | Figure 1 (motivating example) |
//! | `fig2_latent_spaces` | Figure 2 (latent-space quality) |
//! | `fig4_delta_band` | Figure 4 (Δ-band construction) |
//! | `fig5_projection_failure` | Figure 5 (AE projection failure) |
//! | `table1_drift_detection` | Table 1 (drift-detection F1) |
//! | `table2_cluster_distribution` | Table 2 (unsupervised clusters) |
//! | `fig8_specialization` | Figure 8 (specialization accuracy) |
//! | `table3_cross_subset` | Table 3 (cross-subset accuracy) |
//! | `table4_throughput_memory` | Table 4 (throughput & size) |
//! | `table5_selection` | Table 5 (selection policies) |
//! | `fig9_end_to_end` | Figure 9 (end-to-end stream) |
//! | `table6_aggregation` | Table 6 (aggregation queries) |
//! | `table7_ablation` | Table 7 (ablation) |
//! | `startup_latency` | cold-bootstrap vs warm-restore startup |
//!
//! Every binary accepts `--seed <u64>` and `--scale <f32>` (dataset-size
//! multiplier; 1.0 = the defaults used in EXPERIMENTS.md) and writes its
//! rows as JSON under `results/` in addition to printing a paper-style
//! table.

#![warn(missing_docs)]

pub mod cache;
pub mod gate;
pub mod report;
pub mod workloads;

pub use report::{Args, Table};

//! Experiment argument parsing and table reporting.

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// Common experiment arguments, parsed from the command line.
#[derive(Debug, Clone)]
pub struct Args {
    /// Master seed for all randomness.
    pub seed: u64,
    /// Dataset-size multiplier (1.0 = defaults).
    pub scale: f32,
    /// Output directory for JSON rows.
    pub out_dir: PathBuf,
}

impl Default for Args {
    fn default() -> Self {
        Args { seed: 42, scale: 1.0, out_dir: PathBuf::from("results") }
    }
}

impl Args {
    /// Parses `--seed`, `--scale`, and `--out` from `std::env::args`.
    ///
    /// Unknown flags are rejected with a message listing the supported
    /// ones.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Args::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = || it.next().unwrap_or_else(|| panic!("flag {flag} expects a value"));
            match flag.as_str() {
                "--seed" => out.seed = value().parse().expect("--seed expects a u64"),
                "--scale" => out.scale = value().parse().expect("--scale expects a float"),
                "--out" => out.out_dir = PathBuf::from(value()),
                other => panic!("unknown flag {other}; supported: --seed --scale --out"),
            }
        }
        assert!(out.scale > 0.0, "--scale must be positive");
        out
    }

    /// Scales a default count, keeping at least `min`.
    pub fn scaled(&self, default: usize, min: usize) -> usize {
        ((default as f32 * self.scale) as usize).max(min)
    }
}

/// A printable, serializable experiment table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Experiment identifier (e.g. "table1").
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch in table {}", self.id);
        self.rows.push(cells);
    }

    /// Prints the table with aligned columns.
    pub fn print(&self) {
        println!("\n=== {} — {} ===", self.id, self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.headers));
        println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }

    /// Renders the table as pretty-printed JSON.
    ///
    /// The table's value space is strings only, so the writer is a
    /// small hand-rolled escaper rather than a serde pipeline.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"id\": {},\n", json_str(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_str(&self.title)));
        out.push_str(&format!("  \"headers\": {},\n", json_str_array(&self.headers)));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let sep = if i + 1 < self.rows.len() { "," } else { "" };
            out.push_str(&format!("    {}{sep}\n", json_str_array(row)));
        }
        out.push_str("  ]\n}");
        out
    }

    /// Writes the table as JSON under `dir/<id>.json`.
    pub fn save(&self, dir: &PathBuf) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        fs::write(path, self.to_json())
    }

    /// Prints and saves in one call (errors on save are reported, not
    /// fatal — the printed table is the primary artifact).
    pub fn finish(&self, args: &Args) {
        self.print();
        if let Err(e) = self.save(&args.out_dir) {
            eprintln!("warning: could not save {}: {e}", self.id);
        }
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a slice of strings as a JSON array literal.
fn json_str_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", cells.join(", "))
}

/// Formats a float with 3 decimals (the paper's precision).
pub fn f3(v: f32) -> String {
    format!("{v:.3}")
}

/// Formats a float with 2 decimals.
pub fn f2(v: f32) -> String {
    format!("{v:.2}")
}

/// Formats a percentage.
pub fn pct(v: f32) -> String {
    format!("{:.0}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_defaults() {
        let a = Args::from_args(Vec::<String>::new());
        assert_eq!(a.seed, 42);
        assert_eq!(a.scale, 1.0);
    }

    #[test]
    fn args_parse_all_flags() {
        let a =
            Args::from_args(["--seed", "7", "--scale", "0.5", "--out", "/tmp/x"].map(String::from));
        assert_eq!(a.seed, 7);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.out_dir, PathBuf::from("/tmp/x"));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn args_reject_unknown() {
        let _ = Args::from_args(["--bogus".to_string()]);
    }

    #[test]
    fn scaled_respects_min() {
        let a = Args { scale: 0.01, ..Args::default() };
        assert_eq!(a.scaled(100, 10), 10);
    }

    #[test]
    fn table_row_width_checked() {
        let mut t = Table::new("t", "test", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new("t", "test", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn to_json_escapes_and_structures() {
        let mut t = Table::new("t1", "quote \" and \\ back", &["h1", "h2"]);
        t.row(vec!["a\nb".into(), "c".into()]);
        let j = t.to_json();
        assert!(j.contains("\"id\": \"t1\""));
        assert!(j.contains("quote \\\" and \\\\ back"));
        assert!(j.contains("[\"a\\nb\", \"c\"]"));
        assert!(j.ends_with('}'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(pct(0.5), "50%");
    }
}

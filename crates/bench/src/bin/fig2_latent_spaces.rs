//! Figure 2: latent-space quality of AE vs adversarial AE vs DA-GAN.
//!
//! The paper shows this visually; here each claim is a number:
//!
//! * **moment gap** — distance of encoded latents' moments from the
//!   N(0,1) prior. Large for the plain AE (holes: prior samples land in
//!   unreachable regions), small for AAE and DA-GAN.
//! * **reconstruction error** — the AAE trades fidelity for smoothness
//!   (blurrier); the DA-GAN's image discriminator wins some of it back.
//! * **outlier separation** — ratio of unseen-class to known-class
//!   reconstruction error; higher = better drift signal.

use odin_bench::report::{f3, Args, Table};
use odin_data::digits::{digit_dataset, gen_digit};
use odin_data::Image;
use odin_gan::diagnostics::{moment_gap, separation_ratio};
use odin_gan::{AdversarialAe, AeConfig, Autoencoder, DaGan, DaGanConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let iters = args.scaled(1000, 100);

    let train: Vec<Image> = digit_dataset(&mut rng, &[0, 1, 2], args.scaled(120, 20))
        .into_iter()
        .map(|s| s.image)
        .collect();
    let inliers: Vec<Image> =
        (0..args.scaled(60, 15)).map(|i| gen_digit(&mut rng, (i % 3) as u8)).collect();
    let outliers: Vec<Image> =
        (0..args.scaled(60, 15)).map(|i| gen_digit(&mut rng, 3 + (i % 7) as u8)).collect();

    let ae_cfg = AeConfig::digits();

    println!("training standard AE ({iters} iters)...");
    let mut ae = Autoencoder::new(ae_cfg, &mut rng);
    ae.train(&mut rng, &train, iters, 16);

    println!("training adversarial AE ({iters} iters)...");
    let mut aae = AdversarialAe::new(ae_cfg, &mut rng);
    aae.train(&mut rng, &train, iters, 16);

    println!("training DA-GAN ({iters} iters)...");
    let mut dagan = DaGan::new(DaGanConfig::digits(), &mut rng);
    dagan.train(&mut rng, &train, iters, 16);

    let in28 = Image::batch(&inliers);
    let out28 = Image::batch(&outliers);
    let in32 = Image::batch(&inliers.iter().map(|i| i.resize_nearest(32, 32)).collect::<Vec<_>>());
    let out32 =
        Image::batch(&outliers.iter().map(|i| i.resize_nearest(32, 32)).collect::<Vec<_>>());

    let mut t = Table::new(
        "fig2",
        "Latent-space quality (digits; AE trained on classes 0-2)",
        &["model", "moment gap vs N(0,1)", "recon error (inliers)", "outlier separation"],
    );

    let ae_in = ae.reconstruction_errors(&in28);
    let ae_out = ae.reconstruction_errors(&out28);
    t.row(vec![
        "standard AE".into(),
        f3(moment_gap(&ae.encode(&in28))),
        f3(ae_in.iter().sum::<f32>() / ae_in.len() as f32),
        f3(separation_ratio(&ae_in, &ae_out)),
    ]);

    let aae_in = aae.reconstruction_errors(&in28);
    let aae_out = aae.reconstruction_errors(&out28);
    t.row(vec![
        "adversarial AE".into(),
        f3(moment_gap(&aae.encode(&in28))),
        f3(aae_in.iter().sum::<f32>() / aae_in.len() as f32),
        f3(separation_ratio(&aae_in, &aae_out)),
    ]);

    let dg_in = dagan.reconstruction_errors(&in32);
    let dg_out = dagan.reconstruction_errors(&out32);
    t.row(vec![
        "DA-GAN".into(),
        f3(moment_gap(&dagan.encode(&in32))),
        f3(dg_in.iter().sum::<f32>() / dg_in.len() as f32),
        f3(separation_ratio(&dg_in, &dg_out)),
    ]);

    t.finish(&args);
    println!("\npaper shape check: the AE's moment gap should be the largest (holes);");
    println!("AAE and DA-GAN should sit close to the prior (small gap).");
}

//! Figure 4: visualization of a Δ-band over one cluster's distance
//! distribution.
//!
//! Reproduces the paper's plot as an ASCII histogram: the distances of a
//! cluster's points to its centroid, the empty hypersphere core near the
//! centroid, and the [Δ_l, Δ_h] band that captures Δ = 0.75 of the mass.

use odin_bench::report::{f3, Args, Table};
use odin_core::encoder::{HistogramEncoder, LatentEncoder};
use odin_data::{Image, SceneGen, Subset};
use odin_drift::{euclidean, DeltaBand};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let gen = SceneGen::default();
    let n = args.scaled(400, 50);

    // One concept (night frames), projected to the latent space.
    let frames = gen.subset_frames(&mut rng, Subset::Night, n);
    let mut enc = HistogramEncoder::new();
    let refs: Vec<&Image> = frames.iter().map(|f| &f.image).collect();
    let latents = enc.project_batch(&refs);

    let dim = latents[0].len();
    let mut centroid = vec![0.0f32; dim];
    for z in &latents {
        for (c, v) in centroid.iter_mut().zip(z) {
            *c += v / latents.len() as f32;
        }
    }
    let distances: Vec<f32> = latents.iter().map(|z| euclidean(z, &centroid)).collect();
    let band = DeltaBand::fit(&distances, 0.75);

    // ASCII histogram with the band marked.
    let max_d = distances.iter().copied().fold(0.0f32, f32::max) * 1.05;
    let bins = 24usize;
    let mut counts = vec![0usize; bins];
    for &d in &distances {
        let b = ((d / max_d * bins as f32) as usize).min(bins - 1);
        counts[b] += 1;
    }
    let peak = *counts.iter().max().expect("bins") as f32;

    println!("\n=== fig4 — Δ-band over one cluster's centroid-distance histogram ===");
    println!("cluster: NIGHT-DATA, {} points, Δ = 0.75", distances.len());
    println!(
        "band: [Δ_l = {:.3}, Δ_h = {:.3}], empirical mass {:.2}",
        band.lower,
        band.upper,
        band.mass(&distances)
    );
    println!();
    for (i, &c) in counts.iter().enumerate() {
        let lo = i as f32 / bins as f32 * max_d;
        let hi = (i + 1) as f32 / bins as f32 * max_d;
        let in_band = hi > band.lower && lo < band.upper;
        let marker = if in_band { "|" } else { " " };
        let bar = "#".repeat((c as f32 / peak * 50.0) as usize);
        println!("  {lo:6.3}-{hi:6.3} {marker} {bar}");
    }
    println!("\n('|' rows lie inside the Δ-band; note the empty region near distance 0 —");
    println!(" the hypersphere core the paper's Figure 4 shows.)");

    let mut t = Table::new("fig4", "Δ-band parameters", &["Δ", "Δ_l", "Δ_h", "mass", "points"]);
    t.row(vec![
        "0.75".into(),
        f3(band.lower),
        f3(band.upper),
        f3(band.mass(&distances)),
        distances.len().to_string(),
    ]);
    t.finish(&args);
}

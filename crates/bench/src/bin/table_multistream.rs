//! Multi-stream serving table (systems extension): aggregate throughput
//! and tail latency of the sharded [`OdinServer`] as concurrent camera
//! streams scale.
//!
//! Each stream is an *open-loop* camera: a feeder submits its frames at
//! a fixed rate (`CAMERA_FPS`) regardless of how fast the server
//! answers — the serving model of a real deployment, where cameras do
//! not slow down because inference is busy. Aggregate FPS is completed
//! frames over the serving wall clock; p99 frame latency comes from the
//! server's own `odin_server_frame_ms` histograms (submit → reply),
//! merged across shards.
//!
//! The sweep crosses stream counts (1 / 4 / 16) with tensor worker
//! counts (1 / 2 / 4, via `odin_tensor::par::set_num_threads` — the
//! in-process equivalent of `ODIN_THREADS`). While the offered load is
//! under serving capacity, aggregate FPS scales linearly with the
//! stream count (4 streams ≈ 4× one stream); past capacity it
//! saturates and admission control sheds the excess (`rejected`
//! column) instead of letting queues grow without bound.

use std::time::{Duration, Instant};

use odin_bench::report::{Args, Table};
use odin_core::encoder::HistogramEncoder;
use odin_core::pipeline::OdinConfig;
use odin_core::server::{OdinServer, ServerConfig, SubmitError};
use odin_data::{Frame, SceneGen, Subset};
use odin_detect::Detector;
use odin_telemetry::HistogramSnapshot;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fixed per-camera submit rate (frames per second).
const CAMERA_FPS: f64 = 50.0;

struct RowResult {
    completed: usize,
    rejected: usize,
    wall_s: f64,
    p99_ms: f64,
}

/// Merges the per-shard `odin_server_frame_ms` histograms (identical
/// bounds by construction) into one and reads its p99.
fn merged_p99_ms(server: &OdinServer) -> f64 {
    let mut merged: Option<HistogramSnapshot> = None;
    for stream in 0..server.streams() {
        let snap = server.with_shard(stream, |o| o.telemetry().snapshot());
        for h in snap.histograms {
            if h.name != "odin_server_frame_ms" {
                continue;
            }
            match &mut merged {
                None => merged = Some(h),
                Some(m) => {
                    for (b, v) in m.buckets.iter_mut().zip(&h.buckets) {
                        *b += v;
                    }
                    m.count += h.count;
                    m.sum_ns += h.sum_ns;
                }
            }
        }
    }
    merged.map(|m| m.quantile_interp_ms(0.99)).unwrap_or(0.0)
}

fn run_combo(streams: usize, threads: usize, frames: &[Frame], seed: u64) -> RowResult {
    odin_tensor::par::set_num_threads(threads);
    let cfg = ServerConfig {
        streams,
        workers: streams.min(4),
        // Generous cap: in the unsaturated rows nothing queues; in the
        // saturated ones we still want to *measure* the backlog rather
        // than reject most of it.
        queue_cap: 2048,
        batch_max: 16,
        // The serving-throughput table measures steady-state inference:
        // clusters may form, but specialization is deferred forever so
        // a training run never steals bench time from serving.
        odin: OdinConfig { min_train_frames: usize::MAX, ..OdinConfig::default() },
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let teacher = Detector::heavy(48, &mut rng);
    let server = OdinServer::build(cfg, |_| Box::new(HistogramEncoder::new()), teacher, seed);
    for i in 0..server.streams() {
        server.with_shard(i, |o| o.telemetry().clear_sinks());
    }
    // Warm each shard (first-touch allocations, scratch buffers).
    for stream in 0..streams {
        server.process(stream, frames[0].clone()).expect("warmup");
    }

    let period = Duration::from_secs_f64(1.0 / CAMERA_FPS);
    let mut receivers = Vec::with_capacity(streams * frames.len());
    let mut rejected = 0usize;
    let t0 = Instant::now();
    for (tick, frame) in frames.iter().enumerate() {
        // Open loop: every camera fires on the shared tick clock.
        let due = period * tick as u32;
        if let Some(sleep) = due.checked_sub(t0.elapsed()) {
            std::thread::sleep(sleep);
        }
        for stream in 0..streams {
            match server.submit(stream, frame.clone()) {
                Ok(rx) => receivers.push(rx),
                Err(SubmitError::Backpressure { .. }) => rejected += 1,
                Err(e) => panic!("submit failed: {e}"),
            }
        }
    }
    let completed = receivers.len();
    for rx in receivers {
        rx.recv().expect("admitted frame answered");
    }
    let wall_s = t0.elapsed().as_secs_f64();
    RowResult { completed, rejected, wall_s, p99_ms: merged_p99_ms(&server) }
}

fn main() {
    let args = Args::parse();
    let n_frames = args.scaled(150, 40);
    let gen = SceneGen::new(48);
    let mut rng = StdRng::seed_from_u64(args.seed);
    // One steady daytime concept: the table measures serving, not drift.
    let frames = gen.subset_frames(&mut rng, Subset::Day, n_frames);

    let mut t = Table::new(
        "table_multistream",
        "Multi-Stream Sharded Serving: Aggregate Throughput and Tail Latency",
        &["Config", "Streams", "Aggregate FPS", "p99 ms", "Offered FPS", "Completed", "Rejected"],
    );
    for &threads in &[1usize, 2, 4] {
        for &streams in &[1usize, 4, 16] {
            let offered = CAMERA_FPS * streams as f64;
            println!(
                "{streams} stream(s) x {n_frames} frames at {CAMERA_FPS} FPS each, \
                 {threads} tensor thread(s)..."
            );
            let r = run_combo(streams, threads, &frames, args.seed);
            let fps = r.completed as f64 / r.wall_s;
            t.row(vec![
                format!("{streams}s/{threads}t"),
                streams.to_string(),
                format!("{fps:.0}"),
                format!("{:.2}", r.p99_ms),
                format!("{offered:.0}"),
                r.completed.to_string(),
                r.rejected.to_string(),
            ]);
        }
    }
    t.finish(&args);
}

//! Table 2: distribution of conditions across the clusters DETECTOR
//! discovers *unsupervised*.
//!
//! The DA-GAN is trained on a held-out mixed sample (no condition
//! labels); the online cluster manager then sees a gradually drifting
//! stream. Afterwards, each (weather × time-of-day) condition's frames
//! are assigned to their nearest cluster and the column-wise percentage
//! distribution is printed — the paper's Table 2.
//!
//! Paper shape: DETECTOR discovers ~4 clusters out of 15 labeled
//! condition pairs; nearly all night frames land in one cluster
//! regardless of weather; day/clear, rain-ish, and snow-ish conditions
//! each dominate another cluster.

use odin_bench::report::{Args, Table};
use odin_bench::workloads::bdd_dagan;
use odin_core::encoder::{DaGanEncoder, LatentEncoder};
use odin_data::{Condition, DriftSchedule, SceneGen, TimeOfDay, Weather};
use odin_drift::{ClusterManager, ManagerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let gen = SceneGen::default();
    let mut rng = StdRng::seed_from_u64(args.seed);

    let dagan = bdd_dagan(&args);
    let mut encoder = DaGanEncoder::new(dagan);

    // Gradually drifting discovery stream (§6.5 schedule).
    let total = args.scaled(1200, 200);
    println!("clustering a {total}-frame drifting stream (unsupervised)...");
    let stream = DriftSchedule::paper_end_to_end(total).generate(&gen, &mut rng);
    let mut manager = ClusterManager::new(ManagerConfig {
        min_points: 24,
        stable_window: 6,
        kl_eps: 2e-3,
        ..ManagerConfig::default()
    });
    for f in &stream {
        let z = encoder.project(&f.image);
        let _ = manager.observe(&z);
    }
    let cluster_ids: Vec<usize> = manager.clusters().iter().map(|c| c.id()).collect();
    println!(
        "discovered {} clusters (events at {:?})",
        cluster_ids.len(),
        manager.events().iter().map(|e| e.at).collect::<Vec<_>>()
    );

    // Cross-tabulate: for each condition column, the percentage of its
    // frames assigned (by nearest centroid) to each cluster.
    let per_cond = args.scaled(40, 10);
    let mut headers: Vec<String> = vec!["Cluster".into()];
    let mut columns: Vec<Vec<f32>> = Vec::new();
    for &w in &Weather::ALL {
        for &tod in &TimeOfDay::ALL {
            headers.push(format!("{}/{}", w.label(), tod.label()));
            let mut counts = vec![0usize; cluster_ids.len()];
            for _ in 0..per_cond {
                let f = gen.frame(&mut rng, Condition::new(w, tod));
                let z = encoder.project(&f.image);
                let nearest = manager
                    .distances(&z)
                    .into_iter()
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                    .map(|(id, _)| id);
                if let Some(id) = nearest {
                    let idx = cluster_ids.iter().position(|&c| c == id).expect("known id");
                    counts[idx] += 1;
                }
            }
            columns.push(counts.iter().map(|&c| c as f32 / per_cond as f32).collect());
        }
    }

    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "table2",
        "Distribution of conditions across unsupervised clusters (column %)",
        &header_refs,
    );
    for (row_idx, &cid) in cluster_ids.iter().enumerate() {
        let mut row = vec![format!("C-{cid}")];
        for col in &columns {
            row.push(format!("{:.0}%", col[row_idx] * 100.0));
        }
        t.row(row);
    }
    t.finish(&args);

    // Purity summary: how concentrated is night?
    let night_cols: Vec<usize> =
        (0..headers.len() - 1).filter(|i| headers[i + 1].ends_with("/night")).collect();
    let best_night_share = (0..cluster_ids.len())
        .map(|row_idx| {
            night_cols.iter().map(|&col| columns[col][row_idx]).sum::<f32>()
                / night_cols.len() as f32
        })
        .fold(0.0f32, f32::max);
    println!(
        "\nnight concentration: the best cluster absorbs {:.0}% of night frames on average",
        best_night_share * 100.0
    );
    println!("paper shape check: ~4 clusters; one cluster takes nearly all night frames");
    println!("irrespective of weather; day/clear vs rain-ish vs snow-ish split the rest.");
}

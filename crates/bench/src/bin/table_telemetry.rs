//! Telemetry table (systems extension): per-stage latency breakdown,
//! pipeline counters, and the drift timeline for one end-to-end run.
//!
//! Replays a Night→Day drift stream with the store enabled (so snapshot
//! and WAL stages record real work), then reads everything back through
//! the telemetry subsystem: one row per stage histogram with count /
//! mean / p95 / total, the counter set, the drift timeline (detected →
//! queued → installed per cluster), and the overall frame rate with
//! telemetry enabled. The full metric state is also dumped as JSON next
//! to the table for machine consumption.

use std::time::Instant;

use odin_bench::report::{Args, Table};
use odin_core::encoder::HistogramEncoder;
use odin_core::pipeline::{Odin, OdinConfig};
use odin_core::specializer::SpecializerConfig;
use odin_core::CheckpointPolicy;
use odin_data::{DriftSchedule, Phase, SceneGen, Subset};
use odin_detect::{Detector, DetectorArch};
use odin_drift::ManagerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let total = args.scaled(240, 120);
    let gen = SceneGen::new(48);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let stream = DriftSchedule::new(
        total,
        vec![
            Phase { at_frame: 0, adds: Subset::Night },
            Phase { at_frame: total / 2, adds: Subset::Day },
        ],
    )
    .generate(&gen, &mut rng);

    let cfg = OdinConfig {
        manager: ManagerConfig {
            min_points: 12,
            stable_window: 4,
            kl_eps: 5e-3,
            hist_hi: 8.0,
            ..ManagerConfig::default()
        },
        specializer: SpecializerConfig {
            arch: DetectorArch::Small,
            frame_size: 48,
            train_iters: args.scaled(400, 150),
            distill_iters: args.scaled(300, 100),
            batch_size: 8,
        },
        min_train_frames: 20,
        ..OdinConfig::default()
    };

    let teacher = Detector::heavy(48, &mut rng);
    let mut odin = Odin::new(Box::new(HistogramEncoder::new()), teacher, cfg, args.seed);

    let store_dir =
        std::env::temp_dir().join(format!("odin-table-telemetry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let every = (total / 4).max(1);
    odin.enable_store(&store_dir, CheckpointPolicy::EveryNFrames(every)).expect("enable store");

    println!("replaying {} frames (snapshot every {every})...", stream.len());
    let t_all = Instant::now();
    for f in &stream {
        odin.process(f);
    }
    odin.finish_training();
    odin.flush_store();
    let wall_ms = t_all.elapsed().as_secs_f64() * 1e3;

    let snap = odin.telemetry().snapshot();
    let mut t = Table::new(
        "table_telemetry",
        "Per-Stage Latency Breakdown (telemetry subsystem)",
        &["Stage", "count", "mean ms", "p50 ms", "p95 ms", "p99 ms", "total ms"],
    );
    for h in &snap.histograms {
        t.row(vec![
            h.name.clone(),
            h.count.to_string(),
            format!("{:.4}", h.mean_ms()),
            format!("{:.4}", h.quantile_interp_ms(0.50)),
            format!("{:.4}", h.quantile_interp_ms(0.95)),
            format!("{:.4}", h.quantile_interp_ms(0.99)),
            format!("{:.2}", h.sum_ms()),
        ]);
    }
    t.finish(&args);

    println!("\ncounters:");
    for (name, v) in &snap.counters {
        println!("  {name:<42} {v}");
    }
    println!("\ndrift timeline (stage / cluster / stream frame):");
    for ev in &snap.timeline {
        println!("  {:<24} cluster {:<3} frame {}", ev.stage.as_str(), ev.cluster_id, ev.frame);
    }

    let fps = stream.len() as f64 / (wall_ms / 1e3);
    println!(
        "\n{} frames in {:.0} ms ({:.1} fps) with telemetry and the store enabled; \
         store errors: {}",
        stream.len(),
        wall_ms,
        fps,
        odin.stats().store_errors,
    );

    if std::fs::create_dir_all(&args.out_dir).is_ok() {
        let path = args.out_dir.join("table_telemetry_metrics.json");
        match std::fs::write(&path, odin.telemetry().render_json()) {
            Ok(()) => println!("metrics dump: {}", path.display()),
            Err(e) => println!("warning: could not write metrics dump: {e}"),
        }
        let trace = args.out_dir.join("table_telemetry_trace.json");
        match odin.dump_flight_record(&trace) {
            Ok(()) => println!("chrome trace: {}", trace.display()),
            Err(e) => println!("warning: could not write chrome trace: {e}"),
        }
    }

    // Optional exposition window for scrape smoke tests: with
    // ODIN_SERVE_MS=<n> the run stays alive for n ms serving /metrics,
    // /trace, and /healthz on an ephemeral loopback port. The bound
    // address is printed in a stable, greppable form for the caller.
    if let Some(ms) = std::env::var("ODIN_SERVE_MS").ok().and_then(|v| v.parse::<u64>().ok()) {
        if ms > 0 {
            let server = odin.telemetry().serve(("127.0.0.1", 0)).expect("bind metrics server");
            println!("serving telemetry at http://{} for {ms} ms", server.addr());
            use std::io::Write;
            std::io::stdout().flush().expect("flush stdout");
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }
    let _ = std::fs::remove_dir_all(&store_dir);
}

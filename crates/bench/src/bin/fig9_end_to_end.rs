//! Figure 9: end-to-end evaluation on a drifting stream.
//!
//! The §6.5 workload: NIGHT-only, then +DAY at 20%, +SNOW at 40%, +RAIN
//! at 60% (unadjusted mixture). Three configurations:
//!
//! ❶ **Baseline** — one heavyweight YOLO serves everything.
//! ❷ **Δ-BM** — full ODIN with the Δ-BM selection policy.
//! ❸ **Δ-BM + model cap 3** — at the fourth cluster, the smallest
//!   existing cluster is dropped.
//!
//! Paper shape: the baseline is flat and low; ODIN roughly doubles
//! detection accuracy as specialized models come online (dotted lines =
//! cluster discoveries); the model cap costs only a little accuracy.

use odin_bench::report::{f3, Args, Table};
use odin_bench::workloads::{bdd_dagan, pretrained_teacher_on};
use odin_core::encoder::DaGanEncoder;
use odin_core::metrics::{mean_map, StreamEvaluator, WindowPoint};
use odin_core::pipeline::{Odin, OdinConfig};
use odin_core::specializer::SpecializerConfig;
use odin_data::{DriftSchedule, Frame, SceneGen};

use odin_drift::ManagerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_config(
    name: &str,
    cfg: OdinConfig,
    stream: &[Frame],
    window: usize,
    args: &Args,
) -> (Vec<WindowPoint>, Vec<(usize, usize)>) {
    println!("running configuration: {name}...");
    let dagan = bdd_dagan(args);
    // The static system was trained before the drift arrived: on the
    // stream's first concept (NIGHT-DATA).
    let teacher = pretrained_teacher_on(args, odin_data::Subset::Night);
    let mut odin = Odin::new(Box::new(DaGanEncoder::new(dagan)), teacher, cfg, args.seed);
    let mut eval = StreamEvaluator::new(window);
    let mut drifts = Vec::new();
    for (i, f) in stream.iter().enumerate() {
        let r = odin.process(f);
        if let Some(e) = r.drift {
            drifts.push((i, e.cluster_id));
        }
        eval.record(f, r.detections);
    }
    (eval.finish(), drifts)
}

fn main() {
    let args = Args::parse();
    let total = args.scaled(1500, 200);
    let window = (total / 15).max(20);
    let gen = SceneGen::default();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let schedule = DriftSchedule::paper_end_to_end(total);
    let stream = schedule.generate(&gen, &mut rng);
    println!(
        "stream: {total} frames, drift points at {:?} (night → +day → +snow → +rain)",
        schedule.drift_points()
    );

    let manager = ManagerConfig {
        min_points: 24,
        stable_window: 6,
        kl_eps: 2e-3,
        ..ManagerConfig::default()
    };
    let spec =
        SpecializerConfig { train_iters: args.scaled(700, 60), ..SpecializerConfig::default() };
    // Training-data threshold scales with the stream so short smoke runs
    // still exercise recovery.
    let min_train_frames = args.scaled(120, 40);

    let base_cfg = OdinConfig {
        baseline_only: true,
        manager,
        specializer: spec,
        min_train_frames,
        ..OdinConfig::default()
    };
    let dbm_cfg =
        OdinConfig { manager, specializer: spec, min_train_frames, ..OdinConfig::default() };
    let capped_cfg = OdinConfig {
        manager: ManagerConfig { max_clusters: Some(3), ..manager },
        specializer: spec,
        min_train_frames,
        ..OdinConfig::default()
    };

    let (base, _) = run_config("baseline (static YOLO)", base_cfg, &stream, window, &args);
    let (dbm, drifts) = run_config("Δ-BM", dbm_cfg, &stream, window, &args);
    let (capped, drifts_capped) = run_config("Δ-BM + cap 3", capped_cfg, &stream, window, &args);

    let mut t = Table::new(
        "fig9",
        "End-to-End Evaluation: windowed mAP over the drifting stream",
        &["frames", "Baseline", "Δ-BM", "Δ-BM+cap3", "Δ-BM curve"],
    );
    for ((b, d), c) in base.iter().zip(dbm.iter()).zip(capped.iter()) {
        let bar = "#".repeat((d.map * 60.0) as usize);
        t.row(vec![d.at.to_string(), f3(b.map), f3(d.map), f3(c.map), bar]);
    }
    t.finish(&args);

    println!("\ncluster discoveries (Δ-BM): {drifts:?}");
    println!("cluster discoveries (capped): {drifts_capped:?}");
    println!(
        "\nmean mAP — baseline {:.3}, Δ-BM {:.3} ({:.2}x), capped {:.3}",
        mean_map(&base),
        mean_map(&dbm),
        mean_map(&dbm) / mean_map(&base).max(1e-6),
        mean_map(&capped),
    );
    println!("paper shape check: Δ-BM should roughly double the baseline once models come");
    println!("online; the cap-3 configuration should trail Δ-BM only slightly.");
}

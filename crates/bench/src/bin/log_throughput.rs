//! Event-log throughput (systems extension): append rate, on-disk
//! density, and scan rate of the `odin-log` columnar segment format.
//!
//! Three measurements over a synthetic record stream shaped like real
//! pipeline output (mostly `frame` records, a sprinkle of recovery
//! events, smoothly increasing timestamps):
//!
//! * **append** — records/s through the background writer, hot-path
//!   side (`LogWriter::append` + final flush), at several segment
//!   sizes.
//! * **density** — bytes/record after columnar encoding (delta-varint
//!   ids and timestamps, dictionary-coded enums).
//! * **scan** — records/s for a full decode, and the pruned cost of a
//!   narrow time-range query that zone maps collapse to one segment.
//! * **tail follow** — records/s observed by a cursor-paged reader
//!   (`read_after`) chasing a live writer on the same file: the
//!   end-to-end rate of `odin tail -f` (append + segment seal + sealed
//!   read), including the latency of waiting out the unsealed tail.

use std::time::Instant;

use odin_bench::report::{Args, Table};
use odin_log::{
    read_after, scan_log, Cursor, EventLogConfig, LogMetrics, LogRecord, LogWriter, Predicate,
    RecordKind, ServedLabel,
};

/// A record stream shaped like pipeline output: `frame` rows with
/// drifting confidence/latency, one recovery arc every 512 frames.
fn synth(n: usize) -> Vec<LogRecord> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n as u64 {
        let rec = if i % 512 == 511 {
            LogRecord {
                seq: i + 1,
                kind: RecordKind::DriftDetected,
                ts_us: i * 33_000,
                frame: i,
                stream: 0,
                cluster: (i / 512) as i64,
                served: ServedLabel::None,
                dets: 0,
                conf_mean: 0.0,
                conf_max: 0.0,
                latency_us: 0,
                trace: i / 512 + 1,
            }
        } else {
            LogRecord {
                seq: i + 1,
                kind: RecordKind::Frame,
                ts_us: i * 33_000,
                frame: i,
                stream: 0,
                cluster: (i % 3) as i64,
                served: if i % 7 == 0 { ServedLabel::Teacher } else { ServedLabel::Ensemble },
                dets: (i % 5) as u32,
                conf_mean: 0.55 + (i % 10) as f32 * 0.02,
                conf_max: 0.9,
                latency_us: 2_000 + (i % 100) * 7,
                trace: i + 1000,
            }
        };
        out.push(rec);
    }
    out
}

fn main() {
    let args = Args::parse();
    let n = args.scaled(200_000, 20_000);
    let records = synth(n);
    let dir = std::env::temp_dir().join(format!("odin-log-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let mut t = Table::new(
        "log_throughput",
        "Event-Log Append/Scan Throughput (odin-log)",
        &[
            "seg records",
            "append Mrec/s",
            "bytes/record",
            "full scan Mrec/s",
            "pruned query ms",
            "tail follow Mrec/s",
        ],
    );

    for seg in [128usize, 512, 2048] {
        let path = dir.join(format!("bench-{seg}.odlg"));
        let cfg = EventLogConfig {
            enabled: true,
            queue_cap: n + 1,
            segment_records: seg,
            ..Default::default()
        };
        let t0 = Instant::now();
        let writer = LogWriter::open(&path, cfg, LogMetrics::detached()).expect("open");
        for r in &records {
            assert!(writer.append(*r), "queue sized to never drop");
        }
        writer.flush().expect("event-log flush");
        let append_s = t0.elapsed().as_secs_f64();
        assert_eq!(writer.failures(), 0, "writer hit I/O failures");
        drop(writer);

        let len = std::fs::metadata(&path).expect("log written").len();
        let t1 = Instant::now();
        let full = scan_log(&path, &Predicate::default()).expect("full scan");
        let scan_s = t1.elapsed().as_secs_f64();
        assert_eq!(full.records.len(), n);

        // A 1-segment time slice out of the middle of the stream.
        let mid = (n as u64 / 2) * 33_000;
        let pred = Predicate {
            ts_min_us: Some(mid),
            ts_max_us: Some(mid + (seg as u64 - 1) * 33_000 / 2),
            ..Default::default()
        };
        let t2 = Instant::now();
        let narrow = scan_log(&path, &pred).expect("pruned scan");
        let pruned_ms = t2.elapsed().as_secs_f64() * 1e3;
        assert!(narrow.stats.segments_pruned > 0, "zone maps failed to prune");

        // Tail-follow: a fresh writer streams the same records while
        // this thread chases the sealed tail with cursor-paged reads.
        // The reader only ever sees whole sealed segments, so the loop
        // terminates once the writer's final flush seals the tail.
        let tail_path = dir.join(format!("tail-{seg}.odlg"));
        let tail_cfg = EventLogConfig {
            enabled: true,
            queue_cap: n + 1,
            segment_records: seg,
            ..Default::default()
        };
        let t3 = Instant::now();
        let tail_writer =
            LogWriter::open(&tail_path, tail_cfg, LogMetrics::detached()).expect("open");
        let seen = std::thread::scope(|s| {
            let appender = s.spawn(|| {
                for r in &records {
                    assert!(tail_writer.append(*r), "queue sized to never drop");
                }
                tail_writer.flush().expect("event-log flush");
            });
            let mut cursor = Cursor::default();
            let mut seen = 0usize;
            while seen < n {
                let batch = read_after(&tail_path, cursor, 8192).expect("tail read");
                cursor = batch.next;
                if batch.records.is_empty() {
                    std::thread::yield_now();
                }
                seen += batch.records.len();
            }
            appender.join().expect("appender thread");
            seen
        });
        let tail_s = t3.elapsed().as_secs_f64();
        assert_eq!(seen, n, "tail dropped or duplicated records");

        t.row(vec![
            seg.to_string(),
            format!("{:.2}", n as f64 / append_s / 1e6),
            format!("{:.1}", len as f64 / n as f64),
            format!("{:.2}", n as f64 / scan_s / 1e6),
            format!("{:.3}", pruned_ms),
            format!("{:.2}", n as f64 / tail_s / 1e6),
        ]);
    }
    t.finish(&args);
    println!(
        "\n{n} records/run; pruned query touches {} of {} segments at seg=2048",
        scan_log(
            &dir.join("bench-2048.odlg"),
            &Predicate {
                ts_min_us: Some((n as u64 / 2) * 33_000),
                ts_max_us: Some((n as u64 / 2) * 33_000 + 1),
                ..Default::default()
            }
        )
        .map(|r| r.stats.segments_scanned)
        .unwrap_or(0),
        full_segments(&dir, n),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn full_segments(dir: &std::path::Path, _n: usize) -> usize {
    scan_log(&dir.join("bench-2048.odlg"), &Predicate::default())
        .map(|r| r.stats.segments_total)
        .unwrap_or(0)
}

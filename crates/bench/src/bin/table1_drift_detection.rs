//! Table 1: impact of the distance metric on drift-detection accuracy.
//!
//! Known classes {0,1,2}; outlier classes {7,8,9}; outlier fraction
//! swept from 0% to 50%. Methods on MNIST-sim: LOF and PCA on raw
//! pixels, DRAE (AE reconstruction error), AE / AAE / DA-GAN latent-kNN
//! distances. On CIFAR-sim the paper compares the representation-based
//! metrics (AE, AAE, DG).
//!
//! Protocol (the paper does not spell it out; documented in
//! EXPERIMENTS.md): the decision threshold is fixed at the 95th
//! percentile of each detector's scores on a held-out *validation* set
//! of inliers (calibrating on the training set itself overstates the
//! threshold, because learned detectors fit their training data).
//! Each row reports detection *accuracy* — the fraction of correct
//! inlier/outlier decisions at that fixed threshold; the 0% row is
//! therefore the detector's specificity. Accuracy at a fixed threshold
//! declines with outlier share at a rate set by the detector's recall,
//! which reproduces the paper's degradation dynamic.
//!
//! Paper shape: pixel-space detectors (LOF, PCA) and the plain-AE
//! signals degrade as outliers multiply; the adversarial AE holds up
//! better; the DA-GAN degrades the least. At this repo's training scale
//! the gaps are smaller than the paper's (see EXPERIMENTS.md).

use odin_bench::report::{f3, Args, Table};
use odin_core::encoder::{DaGanEncoder, LatentEncoder};
use odin_data::cifar::{cifar_dataset, gen_cifar};
use odin_data::digits::{digit_dataset, gen_digit, outlier_mix};
use odin_data::Image;
use odin_drift::baselines::{LatentKnn, Lof, PcaDetector};
use odin_gan::{AdversarialAe, AeConfig, Autoencoder, DaGan, DaGanConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const KNOWN: [u8; 3] = [0, 1, 2];
const UNKNOWN: [u8; 3] = [7, 8, 9];
const FRACTIONS: [f32; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

/// A fitted scorer: training scores (for calibration) plus a score
/// function over images.
struct Method {
    name: &'static str,
    threshold: f32,
    score: Box<dyn FnMut(&Image) -> f32>,
}

fn quantile(scores: &mut [f32], q: f32) -> f32 {
    scores.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    scores[((scores.len() - 1) as f32 * q) as usize]
}

fn calibrated(
    name: &'static str,
    validation: &[Image],
    mut score: Box<dyn FnMut(&Image) -> f32>,
) -> Method {
    let mut val_scores: Vec<f32> = validation.iter().map(&mut score).collect();
    let threshold = quantile(&mut val_scores, 0.95);
    Method { name, threshold, score }
}

/// Detection accuracy at the fixed threshold: the fraction of points
/// whose inlier/outlier decision is correct.
fn evaluate(m: &mut Method, mixed: &[(Image, bool)]) -> f32 {
    let correct = mixed
        .iter()
        .filter(|(im, is_outlier)| ((m.score)(im) >= m.threshold) == *is_outlier)
        .count();
    correct as f32 / mixed.len() as f32
}

type ProjectFn = Box<dyn FnMut(&Image) -> Vec<f32>>;

fn latent_knn_method(
    name: &'static str,
    mut project: ProjectFn,
    train: &[Image],
    validation: &[Image],
    k: usize,
) -> Method {
    let reference: Vec<Vec<f32>> = train.iter().map(&mut project).collect();
    let knn = LatentKnn::new(reference, k);
    calibrated(name, validation, Box::new(move |im| knn.score(&project(im))))
}

fn run_dataset(
    args: &Args,
    dataset: &'static str,
    gen_fn: fn(&mut StdRng, u8) -> Image,
    train: Vec<Image>,
    ae_cfg: AeConfig,
    dg_cfg: DaGanConfig,
    include_pixel_baselines: bool,
) {
    let mut rng = StdRng::seed_from_u64(args.seed + 1);
    let iters = args.scaled(1500, 150);

    // Held-out inlier validation set for threshold calibration.
    let validation: Vec<Image> =
        (0..args.scaled(90, 30)).map(|i| gen_fn(&mut rng, KNOWN[i % KNOWN.len()])).collect();

    let mut methods: Vec<Method> = Vec::new();

    if include_pixel_baselines {
        println!("[{dataset}] fitting LOF and PCA on raw pixels...");
        let px: Vec<Vec<f32>> = train.iter().map(|im| im.data().to_vec()).collect();
        let lof = Lof::fit(px.clone(), 8);
        methods.push(calibrated("LOF", &validation, Box::new(move |im| lof.score(im.data()))));
        let pca = PcaDetector::fit(&px, 8, 30);
        methods.push(calibrated("PCA", &validation, Box::new(move |im| pca.score(im.data()))));
    }

    println!("[{dataset}] training AE ({iters} iters)...");
    let mut ae = Autoencoder::new(ae_cfg, &mut rng);
    ae.train(&mut rng, &train, iters, 16);
    // DRAE: the AE's reconstruction error (digits only in the paper).
    if include_pixel_baselines {
        let mut drae = Autoencoder::new(ae_cfg, &mut rng);
        drae.import_params(&ae.export_params());
        methods.push(calibrated(
            "DRAE",
            &validation,
            Box::new(move |im| drae.reconstruction_errors(&im.to_batch_tensor())[0]),
        ));
    }
    let s = ae_cfg.size;
    methods.push(latent_knn_method(
        "AE",
        Box::new(move |im| {
            let b = if im.height() == s {
                im.to_batch_tensor()
            } else {
                im.resize_nearest(s, s).to_batch_tensor()
            };
            ae.encode(&b).row(0).into_vec()
        }),
        &train,
        &validation,
        3,
    ));

    println!("[{dataset}] training adversarial AE ({iters} iters)...");
    let mut aae = AdversarialAe::new(ae_cfg, &mut rng);
    aae.train(&mut rng, &train, iters, 16);
    methods.push(latent_knn_method(
        "AAE",
        Box::new(move |im| {
            let b = if im.height() == s {
                im.to_batch_tensor()
            } else {
                im.resize_nearest(s, s).to_batch_tensor()
            };
            aae.encode(&b).row(0).into_vec()
        }),
        &train,
        &validation,
        3,
    ));

    println!("[{dataset}] training DA-GAN ({iters} iters)...");
    let mut dagan = DaGan::new(dg_cfg, &mut rng);
    dagan.train(&mut rng, &train, iters, 16);
    let mut enc = DaGanEncoder::new(dagan);
    methods.push(latent_knn_method(
        "DG",
        Box::new(move |im| enc.project(im)),
        &train,
        &validation,
        3,
    ));

    // Sweep outlier fractions.
    let n_test = args.scaled(200, 60);
    let mut headers: Vec<String> = vec!["Outliers".into()];
    headers.extend(methods.iter().map(|m| m.name.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|x| x.as_str()).collect();
    let mut t = Table::new(
        &format!("table1_{dataset}"),
        &format!("Drift-detection accuracy on {dataset} (fixed-threshold accuracy)"),
        &header_refs,
    );
    let mut eval_rng = StdRng::seed_from_u64(args.seed + 2);
    for frac in FRACTIONS {
        let mixed = outlier_mix(&mut eval_rng, &KNOWN, &UNKNOWN, n_test, frac, gen_fn);
        let mut row = vec![format!("{:.0}%", frac * 100.0)];
        for m in &mut methods {
            row.push(f3(evaluate(m, &mixed)));
        }
        t.row(row);
    }
    t.finish(args);
}

fn main() {
    let args = Args::parse();
    let per_class = args.scaled(150, 30);
    let mut rng = StdRng::seed_from_u64(args.seed);

    let digits_train: Vec<Image> =
        digit_dataset(&mut rng, &KNOWN, per_class).into_iter().map(|x| x.image).collect();
    run_dataset(
        &args,
        "mnist_sim",
        gen_digit,
        digits_train,
        AeConfig::digits(),
        DaGanConfig { width: 12, ..DaGanConfig::digits() },
        true,
    );

    let cifar_train: Vec<Image> =
        cifar_dataset(&mut rng, &KNOWN, per_class).into_iter().map(|x| x.image).collect();
    run_dataset(
        &args,
        "cifar_sim",
        gen_cifar,
        cifar_train,
        AeConfig::cifar(),
        DaGanConfig::cifar(),
        false,
    );

    println!("\npaper shape check: every method starts high at 0% outliers; pixel-space");
    println!("detectors (LOF/PCA) and DRAE degrade fastest as outliers grow; the DA-GAN");
    println!("column should degrade the least (see EXPERIMENTS.md for the measured gaps).");
}

//! Table 8 (systems extension): serving latency through the recovery
//! window, inline vs background SPECIALIZER.
//!
//! The paper's SPECIALIZER trains a new model whenever DETECTOR promotes
//! a cluster. Training inline stalls the serving thread for the whole
//! run, so the frames right after a promotion pay the full training cost
//! as latency. Background mode hands the job to worker threads and keeps
//! serving with the teacher / nearby models; the stream's tail latency
//! through the promotion window collapses while the final system — same
//! seeds per job — is identical after the drain barrier.
//!
//! Reported per mode: p50/p99 frame latency inside the promotion windows
//! (the frames from each drift event onward), the worst single-frame
//! stall, end-to-end wall time, and the final model count.

use std::collections::VecDeque;
use std::time::Instant;

use odin_bench::report::{Args, Table};
use odin_core::encoder::HistogramEncoder;
use odin_core::pipeline::{Odin, OdinConfig};
use odin_core::specializer::SpecializerConfig;
use odin_core::training::TrainingMode;
use odin_core::AtticConfig;
use odin_data::{DriftSchedule, Frame, Phase, RecurringSchedule, SceneGen, Subset};
use odin_detect::{Detector, DetectorArch};
use odin_drift::ManagerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Frames after each promotion considered "the recovery window".
const WINDOW: usize = 40;

struct RunStats {
    p50_ms: f64,
    p99_ms: f64,
    max_stall_ms: f64,
    total_ms: f64,
    drifts: usize,
    models: usize,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn run(mode: TrainingMode, cfg: OdinConfig, stream: &[Frame], seed: u64) -> RunStats {
    let mut rng = StdRng::seed_from_u64(seed);
    let teacher = Detector::heavy(48, &mut rng);
    let cfg = OdinConfig { training: mode, ..cfg };
    let mut odin = Odin::new(Box::new(HistogramEncoder::new()), teacher, cfg, seed);

    let mut latencies_ms = Vec::with_capacity(stream.len());
    let mut drift_at = Vec::new();
    let t_all = Instant::now();
    for (i, f) in stream.iter().enumerate() {
        let t0 = Instant::now();
        let r = odin.process(f);
        latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        if r.drift.is_some() {
            drift_at.push(i);
        }
    }
    odin.finish_training();
    let total_ms = t_all.elapsed().as_secs_f64() * 1e3;

    // Latencies inside the promotion windows only: the frames that pay
    // for recovery under inline training.
    let mut window_lat: Vec<f64> = drift_at
        .iter()
        .flat_map(|&d| latencies_ms[d..(d + WINDOW).min(latencies_ms.len())].iter().copied())
        .collect();
    window_lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let max_stall_ms = latencies_ms.iter().copied().fold(0.0f64, f64::max);

    RunStats {
        p50_ms: percentile(&window_lat, 0.50),
        p99_ms: percentile(&window_lat, 0.99),
        max_stall_ms,
        total_ms,
        drifts: drift_at.len(),
        models: odin.model_count(),
    }
}

struct RecurringStats {
    recoveries: usize,
    p50_rec_ms: f64,
    max_rec_ms: f64,
    rec_per_s: f64,
    attic_hits: u64,
    archived: u64,
}

fn counter(odin: &Odin, name: &str) -> u64 {
    odin.telemetry()
        .snapshot()
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// Replays a recurring night/day schedule under a 1-cluster cap, pairing
/// each drift event with the next model install and measuring the
/// wall-clock gap: the paper's recovery latency. The first two
/// recoveries are the cold promotions of each regime — identical in
/// both runs, paid by retraining either way — so only the *recurring*
/// recoveries (a regime returning after its cluster was evicted) enter
/// the reported mean. With the attic on, those recoveries reinstall the
/// archived model on the drift frame itself; off, each pays the full
/// accumulate-and-retrain window again.
fn run_recurring(with_attic: bool, cfg: OdinConfig, stream: &[Frame], seed: u64) -> RecurringStats {
    let mut rng = StdRng::seed_from_u64(seed);
    let teacher = Detector::heavy(48, &mut rng);
    let cfg = OdinConfig {
        attic: if with_attic { AtticConfig::enabled() } else { AtticConfig::default() },
        ..cfg
    };
    let mut odin = Odin::new(Box::new(HistogramEncoder::new()), teacher, cfg, seed);

    let mut open: VecDeque<Instant> = VecDeque::new();
    let mut rec_ms: Vec<f64> = Vec::new();
    let mut installs_seen = 0;
    for f in stream {
        let t0 = Instant::now();
        let r = odin.process(f);
        if r.drift.is_some() {
            open.push_back(t0);
        }
        let installs = odin.stats().models_installed;
        while installs_seen < installs {
            installs_seen += 1;
            if let Some(t) = open.pop_front() {
                // Floor at 1 µs: a same-frame attic reinstall can land
                // under the timer's resolution, and rec/s divides by it.
                rec_ms.push((t.elapsed().as_secs_f64() * 1e3).max(1e-3));
            }
        }
    }
    odin.finish_training();

    // Median, not mean: re-clustering noise occasionally promotes a
    // genuinely new cluster mid-window, which (correctly) misses the
    // attic and retrains; the median reports the typical recovery
    // without letting those few retrains mask the reinstall latency.
    let mut warm: Vec<f64> = rec_ms[rec_ms.len().min(2)..].to_vec();
    warm.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let p50_rec_ms = percentile(&warm, 0.50);
    RecurringStats {
        recoveries: warm.len(),
        p50_rec_ms,
        max_rec_ms: warm.iter().copied().fold(0.0f64, f64::max),
        rec_per_s: if p50_rec_ms > 0.0 { 1e3 / p50_rec_ms } else { 0.0 },
        attic_hits: counter(&odin, "odin_attic_hits_total"),
        archived: counter(&odin, "odin_attic_archived_total"),
    }
}

fn main() {
    let args = Args::parse();
    let total = args.scaled(240, 120);
    let gen = SceneGen::new(48);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let stream = DriftSchedule::new(
        total,
        vec![
            Phase { at_frame: 0, adds: Subset::Night },
            Phase { at_frame: total / 2, adds: Subset::Day },
        ],
    )
    .generate(&gen, &mut rng);

    let cfg = OdinConfig {
        manager: ManagerConfig {
            min_points: 12,
            stable_window: 4,
            kl_eps: 5e-3,
            hist_hi: 8.0,
            ..ManagerConfig::default()
        },
        specializer: SpecializerConfig {
            arch: DetectorArch::Small,
            frame_size: 48,
            train_iters: args.scaled(400, 150),
            distill_iters: args.scaled(300, 100),
            batch_size: 8,
        },
        min_train_frames: 20,
        ..OdinConfig::default()
    };

    println!("replaying {} frames under each training mode...", stream.len());
    let modes = [
        ("Inline", TrainingMode::Inline),
        ("Background(1)", TrainingMode::Background { workers: 1 }),
        ("Background(2)", TrainingMode::Background { workers: 2 }),
    ];
    let mut t = Table::new(
        "table8",
        "Recovery-Window Serving Latency: Inline vs Background SPECIALIZER",
        &["Mode", "p50 ms", "p99 ms", "max stall ms", "total ms", "drifts", "models"],
    );
    let mut results = Vec::new();
    for (label, mode) in modes {
        let s = run(mode, cfg, &stream, args.seed);
        t.row(vec![
            label.to_string(),
            format!("{:.3}", s.p50_ms),
            format!("{:.3}", s.p99_ms),
            format!("{:.1}", s.max_stall_ms),
            format!("{:.0}", s.total_ms),
            s.drifts.to_string(),
            s.models.to_string(),
        ]);
        results.push((label, s));
    }
    t.finish(&args);

    let inline = &results[0].1;
    let bg = &results[1].1;
    println!(
        "\npaper shape check: background p99 should be >=5x below inline \
         ({:.3} ms vs {:.3} ms, {:.1}x), with identical model counts ({} vs {}).",
        bg.p99_ms,
        inline.p99_ms,
        if bg.p99_ms > 0.0 { inline.p99_ms / bg.p99_ms } else { f64::INFINITY },
        inline.models,
        bg.models,
    );

    // Recurring drift under a 1-cluster cap: every regime return evicts
    // the other regime's model, so recovery is paid over and over. The
    // model attic turns those repeat recoveries into a signature match +
    // reinstall; without it each one re-accumulates and retrains.
    let rec_total = args.scaled(720, 360);
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x0D1A);
    let rec_stream =
        RecurringSchedule::alternating(rec_total, rec_total / 6, &[Subset::Night, Subset::Day])
            .generate(&gen, &mut rng);
    let rec_cfg = OdinConfig {
        manager: ManagerConfig { max_clusters: Some(1), ..cfg.manager },
        min_train_frames: 16,
        ..cfg
    };

    println!("\nreplaying {} recurring-drift frames with and without the attic...", rec_total);
    let mut rt = Table::new(
        "table8_recurring",
        "Recurring-Drift Recovery: attic reinstall vs full retrain",
        &[
            "Mode",
            "recoveries",
            "p50 recover ms",
            "max recover ms",
            "rec/s",
            "attic hits",
            "archived",
        ],
    );
    let mut rec_results = Vec::new();
    for (label, with_attic) in [("Recurring-retrain", false), ("Recurring-attic", true)] {
        let s = run_recurring(with_attic, rec_cfg, &rec_stream, args.seed);
        rt.row(vec![
            label.to_string(),
            s.recoveries.to_string(),
            format!("{:.3}", s.p50_rec_ms),
            format!("{:.3}", s.max_rec_ms),
            format!("{:.1}", s.rec_per_s),
            s.attic_hits.to_string(),
            s.archived.to_string(),
        ]);
        rec_results.push(s);
    }
    rt.finish(&args);

    let retrain = &rec_results[0];
    let attic = &rec_results[1];
    let speedup =
        if attic.p50_rec_ms > 0.0 { retrain.p50_rec_ms / attic.p50_rec_ms } else { f64::INFINITY };
    println!(
        "\nattic shape check: reinstall should be >=10x faster than retrain \
         (p50 {:.3} ms vs {:.3} ms, {:.1}x) with {} attic hits over {} recoveries.",
        attic.p50_rec_ms, retrain.p50_rec_ms, speedup, attic.attic_hits, attic.recoveries,
    );
    assert!(attic.attic_hits > 0, "attic run produced no signature matches");
}

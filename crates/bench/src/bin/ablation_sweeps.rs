//! Design-choice ablation sweeps (beyond the paper's Table 7).
//!
//! Three knobs DESIGN.md calls out, each swept against the drift-
//! detection F1 of the digit workload:
//!
//! 1. **λ_R** — the DA-GAN reconstruction weight (§4.4 argues λ_R =
//!    0.5·λ_Z closes latent holes without destabilizing training),
//! 2. **Δ** — the band mass (§4.1; the paper uses 0.75), swept against
//!    cluster-assignment quality,
//! 3. **latent dimensionality** — the encoder bottleneck.
//!
//! Plus the encoder ablation: the learned DA-GAN projection vs the
//! handcrafted appearance histogram on the BDD-sim clustering task.

use odin_bench::report::{f3, Args, Table};
use odin_core::encoder::{DaGanEncoder, HistogramEncoder, LatentEncoder};
use odin_data::digits::{digit_dataset, gen_digit, outlier_mix};
use odin_data::{Image, SceneGen, Subset, TimeOfDay};
use odin_drift::baselines::LatentKnn;
use odin_drift::eval::best_f1;
use odin_drift::{ClusterManager, DeltaBand, ManagerConfig};
use odin_gan::{DaGan, DaGanConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn digit_f1(args: &Args, cfg: DaGanConfig, train: &[Image], mixed: &[(Image, bool)]) -> f32 {
    let mut rng = StdRng::seed_from_u64(args.seed + 3);
    let mut dagan = DaGan::new(cfg, &mut rng);
    dagan.train(&mut rng, train, args.scaled(1000, 100), 16);
    let mut enc = DaGanEncoder::new(dagan);
    let refs: Vec<&Image> = train.iter().collect();
    let knn = LatentKnn::new(enc.project_batch(&refs), 3);
    let scores: Vec<f32> = mixed.iter().map(|(im, _)| knn.score(&enc.project(im))).collect();
    let labels: Vec<bool> = mixed.iter().map(|&(_, o)| o).collect();
    best_f1(&scores, &labels)
}

fn main() {
    let args = Args::parse();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let train: Vec<Image> = digit_dataset(&mut rng, &[0, 1, 2], args.scaled(100, 30))
        .into_iter()
        .map(|s| s.image)
        .collect();
    let mixed = outlier_mix(&mut rng, &[0, 1, 2], &[7, 8, 9], args.scaled(150, 50), 0.3, gen_digit);

    // --- Sweep 1: λ_R ---
    let mut t1 = Table::new(
        "ablation_lambda_r",
        "DA-GAN reconstruction weight λ_R vs outlier F1 (paper: 0.5)",
        &["λ_R", "outlier F1"],
    );
    for lambda_r in [0.1f32, 0.5, 1.0, 2.0] {
        let cfg = DaGanConfig { lambda_r, width: 12, ..DaGanConfig::digits() };
        println!("training DA-GAN with λ_R = {lambda_r}...");
        t1.row(vec![format!("{lambda_r}"), f3(digit_f1(&args, cfg, &train, &mixed))]);
    }
    t1.finish(&args);

    // --- Sweep 2: latent dimensionality ---
    let mut t2 = Table::new(
        "ablation_latent_dim",
        "DA-GAN latent dimensionality vs outlier F1",
        &["latent dim", "outlier F1"],
    );
    for latent in [8usize, 16, 32, 64] {
        let cfg = DaGanConfig { latent, width: 12, ..DaGanConfig::digits() };
        println!("training DA-GAN with latent = {latent}...");
        t2.row(vec![latent.to_string(), f3(digit_f1(&args, cfg, &train, &mixed))]);
    }
    t2.finish(&args);

    // --- Sweep 3: Δ band mass vs assignment quality ---
    // A single concept's latents; the fraction of *fresh same-concept*
    // points whose band contains them, against the band's width.
    let gen = SceneGen::default();
    let mut enc = HistogramEncoder::new();
    let night: Vec<Vec<f32>> = gen
        .subset_frames(&mut rng, Subset::Night, args.scaled(300, 60))
        .iter()
        .map(|f| enc.project(&f.image))
        .collect();
    let fresh: Vec<Vec<f32>> = gen
        .subset_frames(&mut rng, Subset::Night, args.scaled(150, 40))
        .iter()
        .map(|f| enc.project(&f.image))
        .collect();
    let day: Vec<Vec<f32>> = gen
        .subset_frames(&mut rng, Subset::Day, args.scaled(150, 40))
        .iter()
        .map(|f| enc.project(&f.image))
        .collect();
    let dim = night[0].len();
    let mut centroid = vec![0.0f32; dim];
    for z in &night {
        for (c, v) in centroid.iter_mut().zip(z) {
            *c += v / night.len() as f32;
        }
    }
    let dists: Vec<f32> = night.iter().map(|z| odin_drift::euclidean(z, &centroid)).collect();
    let mut t3 = Table::new(
        "ablation_delta",
        "Band mass Δ vs same-concept acceptance and drift rejection (paper: 0.75)",
        &["Δ", "band width", "same-concept inside", "drifted inside"],
    );
    for delta in [0.5f32, 0.65, 0.75, 0.9, 0.99] {
        let band = DeltaBand::fit(&dists, delta);
        let accept =
            fresh.iter().filter(|z| band.contains(odin_drift::euclidean(z, &centroid))).count()
                as f32
                / fresh.len() as f32;
        let leak = day.iter().filter(|z| band.contains(odin_drift::euclidean(z, &centroid))).count()
            as f32
            / day.len() as f32;
        t3.row(vec![format!("{delta}"), f3(band.width()), f3(accept), f3(leak)]);
    }
    t3.finish(&args);

    // --- Encoder ablation: DA-GAN vs handcrafted histogram on BDD ---
    let mut t4 = Table::new(
        "ablation_encoder",
        "Encoder ablation on BDD-sim clustering (night→day drift)",
        &["encoder", "clusters found", "night purity of first cluster"],
    );
    let night_frames = gen.subset_frames(&mut rng, Subset::Night, args.scaled(200, 50));
    let day_frames = gen.subset_frames(&mut rng, Subset::Day, args.scaled(200, 50));
    let mgr_cfg = ManagerConfig {
        min_points: 24,
        stable_window: 6,
        kl_eps: 2e-3,
        ..ManagerConfig::default()
    };

    let mut run_encoder = |name: &str, enc: &mut dyn LatentEncoder| {
        let mut m = ClusterManager::new(mgr_cfg);
        for f in night_frames.iter().chain(day_frames.iter()) {
            let z = enc.project(&f.image);
            let _ = m.observe(&z);
        }
        // Purity: among the first cluster's would-be members, how many
        // are night frames?
        let (mut night_in, mut total_in) = (0usize, 0usize);
        if let Some(first) = m.clusters().first() {
            for f in night_frames.iter().chain(day_frames.iter()) {
                let z = enc.project(&f.image);
                if first.band().contains(first.distance_to(&z)) {
                    total_in += 1;
                    night_in += (f.cond.time == TimeOfDay::Night) as usize;
                }
            }
        }
        let purity = if total_in == 0 { 0.0 } else { night_in as f32 / total_in as f32 };
        t4.row(vec![name.to_string(), m.clusters().len().to_string(), f3(purity)]);
    };

    let mut hist = HistogramEncoder::new();
    run_encoder("histogram (handcrafted)", &mut hist);
    println!("training BDD DA-GAN for the encoder ablation...");
    let mut dg = DaGanEncoder::new(odin_bench::workloads::bdd_dagan(&args));
    run_encoder("DA-GAN (learned)", &mut dg);
    t4.finish(&args);
}

//! Figure 1: the motivating example.
//!
//! A static heavyweight model trained on RAIN-DATA is confronted with
//! DAY-DATA; ODIN's rain+day specialized models recover. Four metrics:
//! detection accuracy (mAP), aggregation-query accuracy (car counting),
//! throughput (FPS), and model memory.
//!
//! Paper shape: ODIN ~2× detection accuracy, ~6× throughput, ~6×
//! smaller memory (per specialized model) than the static system.

use std::time::Instant;

use odin_bench::report::{f2, f3, Args, Table};
use odin_bench::workloads::{train_heavy, BddSubsets, TRAIN_ITERS};
use odin_core::query::{count_accuracy, CountQuery};
use odin_core::specializer::{Specializer, SpecializerConfig};
use odin_data::{ObjectClass, Subset};
use odin_detect::Detector;

fn main() {
    let args = Args::parse();
    let iters = args.scaled(TRAIN_ITERS, 60);
    let subsets = BddSubsets::generate(&args, 300, 100);
    let day_test = subsets.test(Subset::Day);
    let query = CountQuery::new(ObjectClass::Car);
    let truth: Vec<usize> = day_test.iter().map(|f| query.ground_truth(f)).collect();

    // Static system: heavyweight YOLO trained on RAIN-DATA only.
    println!("training static YOLO on RAIN-DATA...");
    let mut static_model = train_heavy(args.seed, subsets.train(Subset::Rain), iters);

    // ODIN: two specialized models (rain + day); the day model serves
    // DAY-DATA after drift recovery.
    let spec =
        Specializer::new(SpecializerConfig { train_iters: iters, ..SpecializerConfig::default() });
    println!("training ODIN's specialized models (rain + day)...");
    let mut day_model = spec.build_specialized(args.seed + 1, subsets.train(Subset::Day));
    let rain_model = spec.build_specialized(args.seed + 2, subsets.train(Subset::Rain));

    let eval = |model: &mut Detector, label: &str| -> (f32, f32, f32, usize) {
        let map = model.evaluate_map(day_test);
        let t0 = Instant::now();
        let counts: Vec<usize> =
            day_test.iter().map(|f| query.count(&model.detect(&f.image))).collect();
        let fps = day_test.len() as f32 / t0.elapsed().as_secs_f32();
        let qacc = count_accuracy(&counts, &truth);
        println!("  {label}: mAP {map:.3}, query acc {qacc:.3}, {fps:.0} FPS");
        (map, qacc, fps, model.param_bytes())
    };

    println!("evaluating on DAY-DATA (the drifted condition):");
    let (map_s, q_s, fps_s, mem_s) = eval(&mut static_model, "static ");
    let (map_o, q_o, fps_o, mem_day) = eval(&mut day_model, "ODIN   ");
    // ODIN's deployed memory = its per-cluster models.
    let mem_o = mem_day + rain_model.param_bytes();

    let mut t = Table::new(
        "fig1",
        "Motivating Example: static (trained on RAIN) vs ODIN on DAY-DATA",
        &["Metric", "Static", "ODIN", "ODIN / Static"],
    );
    t.row(vec![
        "Detection accuracy (mAP)".into(),
        f3(map_s),
        f3(map_o),
        format!("{}x", f2(map_o / map_s.max(1e-6))),
    ]);
    t.row(vec![
        "Query accuracy (cars)".into(),
        f3(q_s),
        f3(q_o),
        format!("{}x", f2(q_o / q_s.max(1e-6))),
    ]);
    t.row(vec![
        "Throughput (FPS)".into(),
        format!("{fps_s:.0}"),
        format!("{fps_o:.0}"),
        format!("{}x", f2(fps_o / fps_s)),
    ]);
    t.row(vec![
        "Memory (KiB, deployed models)".into(),
        format!("{:.0}", mem_s as f32 / 1024.0),
        format!("{:.0}", mem_o as f32 / 1024.0),
        format!("{}x", f2(mem_o as f32 / mem_s as f32)),
    ]);
    t.finish(&args);
    println!("\npaper shape check: ODIN ~2x detection accuracy, ~6x throughput, smaller memory.");
}

//! Benchmark regression gate: fails (exit 1) when a fresh experiment
//! run regresses a numeric column of a committed baseline table by more
//! than an allowed percentage.
//!
//! ```text
//! bench_gate --baseline results/table4.json \
//!            --candidate /tmp/ci/table4.json \
//!            --column 2 --max-drop-pct 15
//! ```
//!
//! Rows are matched by their first cell (the model / config label), so
//! baseline and candidate may list rows in different orders. Drops are
//! relative: a 625→550 FPS fall is a 12% drop. Improvements never fail.
//!
//! `--rows a,b,c` restricts the gate to the named baseline rows — use it
//! to skip rows whose gated column is non-numeric (e.g. latency-only
//! rows that print "-" for GFLOP/s). A negative `--max-drop-pct` demands
//! an improvement: `--max-drop-pct -100` fails any candidate below 2×
//! its baseline.

use std::path::PathBuf;
use std::process::exit;

use odin_bench::gate::{gate, parse_rows};

struct GateArgs {
    baseline: PathBuf,
    candidate: PathBuf,
    column: usize,
    max_drop_pct: f64,
    rows: Option<Vec<String>>,
}

fn parse_args() -> GateArgs {
    let mut baseline = None;
    let mut candidate = None;
    let mut column = 2usize;
    let mut max_drop_pct = 15.0f64;
    let mut rows = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("flag {flag} expects a value"));
        match flag.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(value())),
            "--candidate" => candidate = Some(PathBuf::from(value())),
            "--column" => column = value().parse().expect("--column expects a usize"),
            "--max-drop-pct" => {
                max_drop_pct = value().parse().expect("--max-drop-pct expects a float")
            }
            "--rows" => rows = Some(value().split(',').map(|s| s.trim().to_string()).collect()),
            other => panic!(
                "unknown flag {other}; supported: --baseline --candidate --column \
                 --max-drop-pct --rows"
            ),
        }
    }
    GateArgs {
        baseline: baseline.expect("--baseline is required"),
        candidate: candidate.expect("--candidate is required"),
        column,
        max_drop_pct,
        rows,
    }
}

fn main() {
    let args = parse_args();
    let read = |path: &PathBuf| -> Vec<Vec<String>> {
        let json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        parse_rows(&json).unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()))
    };
    let mut base_rows = read(&args.baseline);
    let cand_rows = read(&args.candidate);
    if let Some(wanted) = &args.rows {
        base_rows.retain(|r| r.first().is_some_and(|label| wanted.iter().any(|w| w == label)));
        for w in wanted {
            assert!(
                base_rows.iter().any(|r| r.first() == Some(w)),
                "--rows names '{w}' but {} has no such row",
                args.baseline.display()
            );
        }
    }

    let rows = match gate(&base_rows, &cand_rows, args.column, args.max_drop_pct) {
        Ok(rows) => rows,
        Err(e) => {
            println!("bench gate error: {e}");
            exit(1);
        }
    };

    println!(
        "bench gate: column {} of {} vs {} (budget {:.0}% drop)",
        args.column,
        args.candidate.display(),
        args.baseline.display(),
        args.max_drop_pct
    );
    let mut failed = false;
    for r in &rows {
        let verdict = if r.failed { "FAIL" } else { "ok" };
        println!(
            "  {:<20} baseline {:>10.1}  candidate {:>10.1}  drop {:>7.1}%  {verdict}",
            r.label, r.baseline, r.candidate, r.drop_pct
        );
        failed |= r.failed;
    }
    if failed {
        println!("bench gate: REGRESSION beyond {:.0}% budget", args.max_drop_pct);
        exit(1);
    }
    println!("bench gate: ok ({} rows within budget)", rows.len());
}

//! Table 4: performance and memory footprint of the detector family.
//!
//! Paper: YOLO 24 FPS / 237 MB; YOLO-SPECIALIZED 144 FPS / 34 MB;
//! YOLO-LITE 140 FPS / 35 MB — the specialized models are ~6× faster and
//! ~7× smaller. Absolute numbers here are CPU-scale; the ratios are the
//! reproduced result.
//!
//! The INT8 rows profile the same specialized/lite weights served
//! through the quantized path (`ServePrecision::Int8`): Size is the
//! actually-served int8 representation (~4× smaller), and the run ends
//! with the same mAP gate the pipeline applies at install time.

use odin_bench::report::{f2, Args, Table};
use odin_core::QUANT_MAP_DELTA;
use odin_data::{SceneGen, Subset};
use odin_detect::{profile, profile_quantized, Detector, QDetector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let frames = args.scaled(256, 32);

    let mut heavy = Detector::heavy(48, &mut rng);
    let mut specialized = Detector::small(48, &mut rng);
    let mut lite = Detector::small(48, &mut rng);

    let ph = profile(&mut heavy, frames, 16);
    let ps = profile(&mut specialized, frames, 16);
    let pl = profile(&mut lite, frames, 16);

    let q_spec = QDetector::quantize(&specialized).expect("Small detector quantizes");
    let q_lite = QDetector::quantize(&lite).expect("Small detector quantizes");
    let qs = profile_quantized(&q_spec, frames, 16);
    let ql = profile_quantized(&q_lite, frames, 16);

    let mut t = Table::new(
        "table4",
        "Impact of Model Specialization on Performance and Memory Footprint",
        &["Model", "Architecture", "Throughput (FPS)", "Params", "Size (KiB)", "vs YOLO"],
    );
    for (name, arch, p) in [
        ("YOLO", "YoloSim (deep)", &ph),
        ("YOLO-SPECIALIZED", "pruned YoloSim", &ps),
        ("YOLO-LITE", "pruned YoloSim", &pl),
        ("YOLO-SPECIALIZED-INT8", "pruned YoloSim, int8", &qs),
        ("YOLO-LITE-INT8", "pruned YoloSim, int8", &ql),
    ] {
        t.row(vec![
            name.to_string(),
            arch.to_string(),
            format!("{:.0}", p.fps),
            p.params.to_string(),
            format!("{:.1}", p.bytes as f32 / 1024.0),
            format!(
                "{}x faster, {}x smaller",
                f2(p.fps / ph.fps),
                f2(ph.bytes as f32 / p.bytes as f32)
            ),
        ]);
    }
    t.finish(&args);

    println!(
        "\npaper shape check: specialized/lite should be ~6x faster and ~7x smaller than YOLO"
    );
    println!(
        "measured: {:.1}x faster, {:.1}x smaller",
        ps.fps / ph.fps,
        ph.bytes as f32 / ps.bytes as f32
    );

    // The pipeline's install-time quantization gate, applied to a
    // briefly oracle-trained specialized model over held-out frames of
    // its cluster's scene: int8 mAP must stay within QUANT_MAP_DELTA of
    // f32. (The throughput rows above use untrained weights — speed and
    // size don't depend on training, but the gate needs a model that
    // actually detects.)
    let gen = SceneGen::new(48);
    let train = gen.subset_frames(&mut rng, Subset::Day, 120);
    let eval = gen.subset_frames(&mut rng, Subset::Day, 30);
    let mut trained = Detector::small(48, &mut rng);
    trained.train_oracle(&mut rng, &train, 700, 8);
    let q_trained = QDetector::quantize(&trained).expect("Small detector quantizes");
    let f_map = trained.evaluate_map(&eval);
    let q_map = q_trained.evaluate_map(&eval);
    let pass = q_map + QUANT_MAP_DELTA >= f_map;
    println!(
        "int8 mAP gate: f32 {:.3} vs int8 {:.3} (delta budget {:.2}) ... {}",
        f_map,
        q_map,
        QUANT_MAP_DELTA,
        if pass { "PASS" } else { "FAIL" }
    );
    assert!(pass, "int8 serving path fails the install-time mAP gate");
}

//! Table 4: performance and memory footprint of the detector family.
//!
//! Paper: YOLO 24 FPS / 237 MB; YOLO-SPECIALIZED 144 FPS / 34 MB;
//! YOLO-LITE 140 FPS / 35 MB — the specialized models are ~6× faster and
//! ~7× smaller. Absolute numbers here are CPU-scale; the ratios are the
//! reproduced result.

use odin_bench::report::{f2, Args, Table};
use odin_detect::{profile, Detector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let frames = args.scaled(256, 32);

    let mut heavy = Detector::heavy(48, &mut rng);
    let mut specialized = Detector::small(48, &mut rng);
    let mut lite = Detector::small(48, &mut rng);

    let ph = profile(&mut heavy, frames, 16);
    let ps = profile(&mut specialized, frames, 16);
    let pl = profile(&mut lite, frames, 16);

    let mut t = Table::new(
        "table4",
        "Impact of Model Specialization on Performance and Memory Footprint",
        &["Model", "Architecture", "Throughput (FPS)", "Params", "Size (KiB)", "vs YOLO"],
    );
    for (name, arch, p) in [
        ("YOLO", "YoloSim (deep)", &ph),
        ("YOLO-SPECIALIZED", "pruned YoloSim", &ps),
        ("YOLO-LITE", "pruned YoloSim", &pl),
    ] {
        t.row(vec![
            name.to_string(),
            arch.to_string(),
            format!("{:.0}", p.fps),
            p.params.to_string(),
            format!("{:.1}", p.bytes as f32 / 1024.0),
            format!(
                "{}x faster, {}x smaller",
                f2(p.fps / ph.fps),
                f2(ph.bytes as f32 / p.bytes as f32)
            ),
        ]);
    }
    t.finish(&args);

    println!(
        "\npaper shape check: specialized/lite should be ~6x faster and ~7x smaller than YOLO"
    );
    println!(
        "measured: {:.1}x faster, {:.1}x smaller",
        ps.fps / ph.fps,
        ph.bytes as f32 / ps.bytes as f32
    );
}

//! Table 7: ablation study.
//!
//! Three configurations over the §6.5 drifting stream:
//!
//! * **End-to-End** — DETECTOR + SPECIALIZER + SELECTOR (Δ-BM),
//! * **−SELECTOR** — drift detection and specialization, but every frame
//!   is served by the most recently created model,
//! * **Baseline** — the static heavyweight YOLO.
//!
//! Paper shape: removing SELECTOR costs most of the accuracy gain (old
//! concepts re-appear and the newest model mishandles them) while
//! throughput/memory stay at ODIN levels; the baseline is slow, large,
//! and inaccurate.

use std::time::Instant;

use odin_bench::report::{f3, Args, Table};
use odin_bench::workloads::{bdd_dagan, pretrained_teacher_on};
use odin_core::encoder::DaGanEncoder;
use odin_core::metrics::{mean_map, StreamEvaluator};
use odin_core::pipeline::{Odin, OdinConfig};
use odin_core::query::{count_accuracy, CountQuery};
use odin_core::selector::SelectionPolicy;
use odin_core::specializer::SpecializerConfig;
use odin_data::{DriftSchedule, Frame, ObjectClass, SceneGen};

use odin_drift::ManagerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct AblationResult {
    map: f32,
    query_acc: f32,
    fps: f32,
    memory_kib: f32,
}

fn run(cfg: OdinConfig, stream: &[Frame], window: usize, args: &Args) -> AblationResult {
    let dagan = bdd_dagan(args);
    // The static system was trained before the drift arrived: on the
    // stream's first concept (NIGHT-DATA).
    let teacher = pretrained_teacher_on(args, odin_data::Subset::Night);
    let mut odin = Odin::new(Box::new(DaGanEncoder::new(dagan)), teacher, cfg, args.seed);
    let query = CountQuery::new(ObjectClass::Car);
    let mut eval = StreamEvaluator::new(window);
    let mut counts = Vec::with_capacity(stream.len());
    let mut truth = Vec::with_capacity(stream.len());
    let mut inference_time = 0.0f32;
    for f in stream {
        let t0 = Instant::now();
        let r = odin.process(f);
        inference_time += t0.elapsed().as_secs_f32();
        counts.push(query.count(&r.detections));
        truth.push(query.ground_truth(f));
        eval.record(f, r.detections);
    }
    AblationResult {
        map: mean_map(&eval.finish()),
        query_acc: count_accuracy(&counts, &truth),
        fps: stream.len() as f32 / inference_time,
        memory_kib: odin.memory_bytes() as f32 / 1024.0,
    }
}

fn main() {
    let args = Args::parse();
    let total = args.scaled(1200, 150);
    let window = (total / 10).max(20);
    let gen = SceneGen::default();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let stream = DriftSchedule::paper_end_to_end(total).generate(&gen, &mut rng);

    let manager = ManagerConfig {
        min_points: 24,
        stable_window: 6,
        kl_eps: 2e-3,
        ..ManagerConfig::default()
    };
    let spec =
        SpecializerConfig { train_iters: args.scaled(700, 60), ..SpecializerConfig::default() };
    // Training-data threshold scales with the stream so short smoke runs
    // still exercise recovery.
    let min_train_frames = args.scaled(120, 40);

    println!("running End-to-End (Δ-BM)...");
    let full = run(
        OdinConfig { manager, specializer: spec, min_train_frames, ..OdinConfig::default() },
        &stream,
        window,
        &args,
    );
    println!("running -SELECTOR (most recent model)...");
    let nosel = run(
        OdinConfig {
            manager,
            specializer: spec,
            policy: SelectionPolicy::MostRecent,
            min_train_frames,
            ..OdinConfig::default()
        },
        &stream,
        window,
        &args,
    );
    println!("running Baseline (static YOLO)...");
    let base = run(
        OdinConfig {
            baseline_only: true,
            manager,
            specializer: spec,
            min_train_frames,
            ..OdinConfig::default()
        },
        &stream,
        window,
        &args,
    );

    let mut t = Table::new(
        "table7",
        "Ablation study for ODIN",
        &["Experiment", "mAP", "Query Acc", "Throughput (FPS)", "Memory (KiB)"],
    );
    for (name, r) in [("End-to-End Model", &full), ("-SELECTOR", &nosel), ("Baseline", &base)] {
        t.row(vec![
            name.to_string(),
            f3(r.map),
            f3(r.query_acc),
            format!("{:.0}", r.fps),
            format!("{:.0}", r.memory_kib),
        ]);
    }
    t.finish(&args);
    println!("\npaper shape check: -SELECTOR should fall toward the baseline's accuracy");
    println!("while keeping ODIN-like throughput/memory; the baseline is slowest/largest.");
    println!("(note: FPS here includes DETECTOR encoding and in-stream training pauses.)");
}

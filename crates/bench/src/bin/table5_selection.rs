//! Table 5: impact of the model-selection policy on accuracy.
//!
//! ODIN discovers clusters from a concept-ordered bootstrap stream
//! (training a specialized model per cluster), then each SELECTOR policy
//! — KNN-U, KNN-W, Δ-BM — is evaluated over the same clusters and models
//! on every BDD-sim subset, against the static heavyweight baseline.
//!
//! Paper shape: KNN-W > KNN-U everywhere (distance weighting helps);
//! Δ-BM ≥ KNN-W on most subsets (high-density bands beat whole-cluster
//! distances); every policy beats the static baseline off FULL-DATA.

use odin_bench::report::{f3, Args, Table};
use odin_bench::workloads::{bdd_dagan, pretrained_teacher, train_heavy, BddSubsets, TRAIN_ITERS};
use odin_core::encoder::DaGanEncoder;
use odin_core::pipeline::{Odin, OdinConfig};
use odin_core::selector::SelectionPolicy;
use odin_core::specializer::SpecializerConfig;
use odin_data::Subset;
use odin_detect::{mean_average_precision, MAP_IOU};
use odin_drift::ManagerConfig;

fn main() {
    let args = Args::parse();
    let iters = args.scaled(TRAIN_ITERS, 60);
    let subsets = BddSubsets::generate(&args, 300, 80);

    println!("training baseline YOLO on FULL-DATA...");
    let baseline = train_heavy(args.seed, subsets.train(Subset::Full), iters);

    let dagan = bdd_dagan(&args);
    let teacher = pretrained_teacher(&args);
    let cfg = OdinConfig {
        manager: ManagerConfig {
            min_points: 24,
            stable_window: 6,
            kl_eps: 2e-3,
            ..ManagerConfig::default()
        },
        specializer: SpecializerConfig { train_iters: iters, ..SpecializerConfig::default() },
        ..OdinConfig::default()
    };
    let mut odin = Odin::new(Box::new(DaGanEncoder::new(dagan)), teacher, cfg, args.seed);

    // Concept-ordered bootstrap: DETECTOR discovers one cluster per
    // concept and SPECIALIZER trains its model.
    println!("bootstrapping clusters + specialized models (day, night, rain, snow)...");
    for subset in [Subset::Day, Subset::Night, Subset::Rain, Subset::Snow] {
        let promoted = odin.bootstrap_clusters(subsets.train(subset));
        println!("  {}: promoted clusters {:?}", subset.label(), promoted);
    }
    println!("clusters: {}, models: {}", odin.manager().clusters().len(), odin.model_count());

    let policies = [
        ("Baseline", None),
        ("KNN-U", Some(SelectionPolicy::KnnUnweighted(4))),
        ("KNN-W", Some(SelectionPolicy::KnnWeighted(4))),
        ("Δ-BM", Some(SelectionPolicy::DeltaBand)),
    ];

    let mut t = Table::new(
        "table5",
        "Impact of Model Selection on Accuracy (mAP)",
        &["Data", "Baseline", "KNN-U", "KNN-W", "Δ-BM"],
    );
    for &subset in Subset::ALL.iter() {
        let test = subsets.test(subset);
        let mut row = vec![subset.label().to_string()];
        for (_, policy) in &policies {
            let map = match policy {
                None => baseline.evaluate_map(test),
                Some(p) => {
                    odin.set_policy(*p);
                    let dets: Vec<_> = test.iter().map(|f| odin.infer_only(f)).collect();
                    let gts: Vec<&[odin_data::GtBox]> =
                        test.iter().map(|f| f.boxes.as_slice()).collect();
                    mean_average_precision(&dets, &gts, MAP_IOU)
                }
            };
            row.push(f3(map));
        }
        t.row(row);
    }
    t.finish(&args);
    println!("\npaper shape check: KNN-W > KNN-U on all subsets; Δ-BM >= KNN-W on most.");
}

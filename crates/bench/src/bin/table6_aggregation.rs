//! Table 6: aggregation queries and lightweight filters (§6.6).
//!
//! `SELECT COUNT(detections) ... WHERE class IN ('car','truck')` over a
//! drifting stream, under five systems:
//!
//! * **Static** — one heavyweight model, no specialization,
//! * **ODIN** — per-cluster YoloSpecialized models,
//! * **ODIN-HEAVY** — per-cluster specialized *heavyweight* models,
//! * **ODIN-PP** — ODIN plus a single unspecialized filter,
//! * **ODIN-FILTER** — ODIN plus per-cluster specialized filters.
//!
//! Paper shape: ODIN ≫ static on query accuracy at much higher FPS;
//! ODIN-HEAVY is slightly more accurate but ~7× slower; ODIN-FILTER
//! keeps accuracy while skipping work (more for rare trucks); ODIN-PP's
//! unspecialized filter loses accuracy under drift.

use std::collections::BTreeMap;
use std::time::Instant;

use odin_bench::report::{f3, pct, Args, Table};
use odin_bench::workloads::{bdd_dagan, pretrained_teacher, train_heavy, BddSubsets, TRAIN_ITERS};
use odin_core::encoder::DaGanEncoder;
use odin_core::filter::BinaryFilter;
use odin_core::pipeline::{Odin, OdinConfig};
use odin_core::query::{count_accuracy, CountQuery};
use odin_core::specializer::SpecializerConfig;
use odin_data::{Frame, ObjectClass, SceneGen, Subset};
use odin_detect::DetectorArch;
use odin_drift::ManagerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CONCEPTS: [Subset; 4] = [Subset::Day, Subset::Night, Subset::Rain, Subset::Snow];

/// Builds an ODIN instance with clusters + specialized models
/// bootstrapped from the four concepts.
fn build_odin(args: &Args, arch: DetectorArch, iters: usize, subsets: &BddSubsets) -> Odin {
    let dagan = bdd_dagan(args);
    let teacher = pretrained_teacher(args);
    let cfg = OdinConfig {
        manager: ManagerConfig {
            min_points: 24,
            stable_window: 6,
            kl_eps: 2e-3,
            ..ManagerConfig::default()
        },
        specializer: SpecializerConfig { arch, train_iters: iters, ..SpecializerConfig::default() },
        ..OdinConfig::default()
    };
    let mut odin = Odin::new(Box::new(DaGanEncoder::new(dagan)), teacher, cfg, args.seed);
    for subset in CONCEPTS {
        odin.bootstrap_clusters(subsets.train(subset));
    }
    odin
}

struct QueryRun {
    car_acc: f32,
    truck_acc: f32,
    fps: f32,
    car_reduction: f32,
    truck_reduction: f32,
}

/// Runs both counting queries over the stream through `count_fn`, which
/// returns `(car_count, truck_count, car_skipped, truck_skipped)`.
fn run_queries(
    stream: &[Frame],
    mut count_fn: impl FnMut(&Frame) -> (usize, usize, bool, bool),
) -> QueryRun {
    let car_q = CountQuery::new(ObjectClass::Car);
    let truck_q = CountQuery::new(ObjectClass::Truck);
    let mut cars = Vec::new();
    let mut trucks = Vec::new();
    let mut car_truth = Vec::new();
    let mut truck_truth = Vec::new();
    let mut car_skips = 0usize;
    let mut truck_skips = 0usize;
    let t0 = Instant::now();
    for f in stream {
        let (c, t, cs, ts) = count_fn(f);
        cars.push(c);
        trucks.push(t);
        car_skips += cs as usize;
        truck_skips += ts as usize;
        car_truth.push(car_q.ground_truth(f));
        truck_truth.push(truck_q.ground_truth(f));
    }
    let secs = t0.elapsed().as_secs_f32();
    QueryRun {
        car_acc: count_accuracy(&cars, &car_truth),
        truck_acc: count_accuracy(&trucks, &truck_truth),
        fps: stream.len() as f32 / secs,
        car_reduction: car_skips as f32 / stream.len() as f32,
        truck_reduction: truck_skips as f32 / stream.len() as f32,
    }
}

fn count_dets(dets: &[odin_detect::Detection]) -> (usize, usize) {
    let cars = dets.iter().filter(|d| d.bbox.class == ObjectClass::Car).count();
    let trucks = dets.iter().filter(|d| d.bbox.class == ObjectClass::Truck).count();
    (cars, trucks)
}

fn main() {
    let args = Args::parse();
    let iters = args.scaled(TRAIN_ITERS, 60);
    let subsets = BddSubsets::generate(&args, 250, 60);

    // Drifting evaluation stream: the four concepts interleaved.
    let gen = SceneGen::default();
    let mut rng = StdRng::seed_from_u64(args.seed + 99);
    let per = args.scaled(100, 25);
    let mut stream: Vec<Frame> = Vec::new();
    for i in 0..per * CONCEPTS.len() {
        let subset = CONCEPTS[i % CONCEPTS.len()];
        let cond = subset.sample_condition(&mut rng);
        stream.push(gen.frame(&mut rng, cond));
    }

    println!("training static heavyweight model on FULL-DATA...");
    let static_model = train_heavy(args.seed, subsets.train(Subset::Full), iters);

    println!("building ODIN (specialized small models)...");
    let mut odin = build_odin(&args, DetectorArch::Small, iters, &subsets);
    println!("building ODIN-HEAVY (specialized heavyweight models)...");
    let mut odin_heavy = build_odin(&args, DetectorArch::Heavy, iters, &subsets);

    // Filters. ODIN-PP: one unspecialized filter per class; ODIN-FILTER:
    // per-cluster specialized filters per class.
    println!("training filters...");
    let mut rng_f = StdRng::seed_from_u64(args.seed + 7);
    let filter_iters = args.scaled(400, 50);
    let mut pp_car = BinaryFilter::new(ObjectClass::Car, 48, &mut rng_f);
    pp_car.train(&mut rng_f, subsets.train(Subset::Full), filter_iters, 8);
    let mut pp_truck = BinaryFilter::new(ObjectClass::Truck, 48, &mut rng_f);
    pp_truck.train(&mut rng_f, subsets.train(Subset::Full), filter_iters, 8);
    let mut spec_car: BTreeMap<Subset, BinaryFilter> = BTreeMap::new();
    let mut spec_truck: BTreeMap<Subset, BinaryFilter> = BTreeMap::new();
    for subset in CONCEPTS {
        let mut fc = BinaryFilter::new(ObjectClass::Car, 48, &mut rng_f);
        fc.train(&mut rng_f, subsets.train(subset), filter_iters, 8);
        spec_car.insert(subset, fc);
        let mut ft = BinaryFilter::new(ObjectClass::Truck, 48, &mut rng_f);
        ft.train(&mut rng_f, subsets.train(subset), filter_iters, 8);
        spec_truck.insert(subset, ft);
    }

    println!("executing queries...");
    let r_static = run_queries(&stream, |f| {
        let (c, t) = count_dets(&static_model.detect(&f.image));
        (c, t, false, false)
    });
    let r_odin = run_queries(&stream, |f| {
        let (c, t) = count_dets(&odin.infer_only(f));
        (c, t, false, false)
    });
    let r_heavy = run_queries(&stream, |f| {
        let (c, t) = count_dets(&odin_heavy.infer_only(f));
        (c, t, false, false)
    });
    let r_pp = run_queries(&stream, |f| {
        let car_pass = pp_car.pass(&f.image);
        let truck_pass = pp_truck.pass(&f.image);
        let (c, t) = if car_pass || truck_pass { count_dets(&odin.infer_only(f)) } else { (0, 0) };
        (if car_pass { c } else { 0 }, if truck_pass { t } else { 0 }, !car_pass, !truck_pass)
    });
    // ODIN-FILTER picks the filter specialized for the frame's concept
    // (selected by condition subset, mirroring the per-cluster filter
    // selector of Figure 10b).
    let r_filter = run_queries(&stream, |f| {
        let subset = CONCEPTS.iter().copied().find(|s| s.contains(&f.cond)).unwrap_or(Subset::Day);
        let car_pass = spec_car.get_mut(&subset).expect("filter exists").pass(&f.image);
        let truck_pass = spec_truck.get_mut(&subset).expect("filter exists").pass(&f.image);
        let (c, t) = if car_pass || truck_pass { count_dets(&odin.infer_only(f)) } else { (0, 0) };
        (if car_pass { c } else { 0 }, if truck_pass { t } else { 0 }, !car_pass, !truck_pass)
    });

    let mut t = Table::new(
        "table6",
        "Aggregation Queries and Lightweight Filters",
        &["Architecture", "Cars acc", "Trucks acc", "FPS", "Reduction cars", "Reduction trucks"],
    );
    for (name, r) in [
        ("Static", &r_static),
        ("ODIN", &r_odin),
        ("ODIN-HEAVY", &r_heavy),
        ("ODIN-FILTER", &r_filter),
        ("ODIN-PP", &r_pp),
    ] {
        let (rc, rt) = if name.contains("FILTER") || name.contains("PP") {
            (pct(r.car_reduction), pct(r.truck_reduction))
        } else {
            ("-".to_string(), "-".to_string())
        };
        t.row(vec![
            name.to_string(),
            f3(r.car_acc),
            f3(r.truck_acc),
            format!("{:.0}", r.fps),
            rc,
            rt,
        ]);
    }
    t.finish(&args);
    println!("\npaper shape check: ODIN beats static at higher FPS; ODIN-HEAVY is a bit");
    println!("more accurate but much slower; truck reduction > car reduction (trucks are");
    println!("rarer); ODIN-PP loses more accuracy than ODIN-FILTER under drift.");
}

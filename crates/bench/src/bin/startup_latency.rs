//! Startup latency: cold bootstrap vs warm restore (systems extension).
//!
//! The cost the odin-store checkpoint erases is everything the pipeline
//! *learned* during its first life: cluster promotions, Δ-band fitting,
//! and — dominating by orders of magnitude — training the specialized
//! models. Cold start pays it all again from the raw stream; warm
//! restore reads one checksummed snapshot and serves immediately with
//! the same clusters, the same model weights, and the same deployment
//! footprint.
//!
//! Reported: time to learn the system from scratch (cold), time to
//! checkpoint it, time to restore it, the speedup, and proof of
//! equivalence (model count and `memory_bytes` on both sides).

use std::time::Instant;

use odin_bench::report::{Args, Table};
use odin_core::encoder::HistogramEncoder;
use odin_core::pipeline::{Odin, OdinConfig};
use odin_core::specializer::SpecializerConfig;
use odin_core::AtticConfig;
use odin_data::{RecurringSchedule, SceneGen, Subset};
use odin_detect::{Detector, DetectorArch};
use odin_drift::ManagerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_cfg() -> OdinConfig {
    OdinConfig {
        manager: ManagerConfig {
            min_points: 12,
            stable_window: 4,
            kl_eps: 5e-3,
            hist_hi: 8.0,
            ..ManagerConfig::default()
        },
        specializer: SpecializerConfig {
            arch: DetectorArch::Small,
            frame_size: 48,
            train_iters: 60,
            distill_iters: 40,
            batch_size: 4,
        },
        min_train_frames: 20,
        ..OdinConfig::default()
    }
}

fn cold_bootstrap(args: &Args, n_frames: usize) -> Odin {
    let mut rng = StdRng::seed_from_u64(args.seed);
    let teacher = Detector::heavy(48, &mut rng);
    let mut odin = Odin::new(Box::new(HistogramEncoder::new()), teacher, quick_cfg(), args.seed);
    let gen = SceneGen::new(48);
    let mut stream_rng = StdRng::seed_from_u64(args.seed ^ 0x51A7);
    odin.process_stream(&gen.subset_frames(&mut stream_rng, Subset::Night, n_frames));
    odin.process_stream(&gen.subset_frames(&mut stream_rng, Subset::Day, n_frames));
    odin
}

fn main() {
    let args = Args::parse();
    let n_frames = args.scaled(120, 40);
    let snapshot = args.out_dir.join("cache").join(format!("startup_{}.odst", args.seed));

    let t0 = Instant::now();
    let mut odin = cold_bootstrap(&args, n_frames);
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    odin.checkpoint(&snapshot).expect("checkpoint");
    let checkpoint_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let restored = Odin::restore(&snapshot).expect("restore");
    let restore_ms = t0.elapsed().as_secs_f64() * 1e3;

    assert_eq!(restored.model_count(), odin.model_count(), "restore lost models");
    assert_eq!(restored.memory_bytes(), odin.memory_bytes(), "restore changed footprint");

    let snapshot_bytes = std::fs::metadata(&snapshot).map(|m| m.len()).unwrap_or(0);
    let speedup = if restore_ms > 0.0 { cold_ms / restore_ms } else { f64::INFINITY };

    let mut table = Table::new(
        "startup_latency",
        "Startup latency: cold bootstrap vs warm restore",
        &["path", "time (ms)", "models", "memory (KiB)", "notes"],
    );
    table.row(vec![
        "cold bootstrap".to_string(),
        format!("{cold_ms:.1}"),
        odin.model_count().to_string(),
        format!("{:.1}", odin.memory_bytes() as f64 / 1024.0),
        format!("{} frames/concept, 2 concepts", n_frames),
    ]);
    table.row(vec![
        "checkpoint write".to_string(),
        format!("{checkpoint_ms:.1}"),
        "-".to_string(),
        format!("{:.1}", snapshot_bytes as f64 / 1024.0),
        "atomic tmp+fsync+rename".to_string(),
    ]);
    table.row(vec![
        "warm restore".to_string(),
        format!("{restore_ms:.1}"),
        restored.model_count().to_string(),
        format!("{:.1}", restored.memory_bytes() as f64 / 1024.0),
        format!("{speedup:.0}x faster than cold"),
    ]);

    // Recurring drift under a 1-cluster cap with the attic on: the
    // checkpoint now carries archived models too, and the restored
    // pipeline resumes with the same attic occupancy — the recovery
    // shortcut survives a restart.
    let snapshot = args.out_dir.join("cache").join(format!("startup_attic_{}.odst", args.seed));
    let mut rng = StdRng::seed_from_u64(args.seed);
    let teacher = Detector::heavy(48, &mut rng);
    let cfg = OdinConfig {
        manager: ManagerConfig { max_clusters: Some(1), ..quick_cfg().manager },
        min_train_frames: 16,
        attic: AtticConfig::enabled(),
        ..quick_cfg()
    };
    let mut odin = Odin::new(Box::new(HistogramEncoder::new()), teacher, cfg, args.seed);
    let gen = SceneGen::new(48);
    let mut stream_rng = StdRng::seed_from_u64(args.seed ^ 0x0D1A);
    let rec_total = 3 * n_frames;
    let stream = RecurringSchedule::alternating(rec_total, n_frames, &[Subset::Night, Subset::Day])
        .generate(&gen, &mut stream_rng);
    odin.process_stream(&stream);

    let t0 = Instant::now();
    odin.checkpoint(&snapshot).expect("checkpoint");
    let restored = Odin::restore(&snapshot).expect("restore");
    let attic_restore_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (archived, attic_bytes) = odin.attic_stats();
    assert!(archived > 0, "recurring bootstrap never archived a model");
    assert_eq!(restored.attic_stats(), odin.attic_stats(), "restore changed the attic");

    table.row(vec![
        "warm restore (attic)".to_string(),
        format!("{attic_restore_ms:.1}"),
        restored.model_count().to_string(),
        format!("{:.1}", restored.memory_bytes() as f64 / 1024.0),
        format!("{archived} archived models ({:.1} KiB) survive", attic_bytes as f64 / 1024.0),
    ]);
    table.print();
    table.save(&args.out_dir).expect("write results");
}

//! Figure 5: the projection-failure experiment.
//!
//! An autoencoder trained on digits 0–2 reconstructs those digits well
//! but fails on digits 3–9 — the latent projection only covers the
//! training distribution, so reconstruction error is a drift signal.

use odin_bench::report::{f3, Args, Table};
use odin_data::digits::{digit_dataset, gen_digit};
use odin_data::Image;
use odin_gan::{AeConfig, Autoencoder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let mut rng = StdRng::seed_from_u64(args.seed);

    let train: Vec<Image> = digit_dataset(&mut rng, &[0, 1, 2], args.scaled(120, 20))
        .into_iter()
        .map(|s| s.image)
        .collect();
    println!("training AE on digits 0-2 ({} images)...", train.len());
    let mut ae = Autoencoder::new(AeConfig::digits(), &mut rng);
    ae.train(&mut rng, &train, args.scaled(1200, 100), 16);

    let mut t = Table::new(
        "fig5",
        "Projection failure: per-digit reconstruction error (AE trained on 0-2)",
        &["digit", "trained on", "recon error", ""],
    );
    let per_digit = args.scaled(40, 10);
    let mut known_mean = 0.0f32;
    let mut unknown_mean = 0.0f32;
    for d in 0u8..10 {
        let imgs: Vec<Image> = (0..per_digit).map(|_| gen_digit(&mut rng, d)).collect();
        let batch = Image::batch(&imgs);
        let errs = ae.reconstruction_errors(&batch);
        let mean = errs.iter().sum::<f32>() / errs.len() as f32;
        if d <= 2 {
            known_mean += mean / 3.0;
        } else {
            unknown_mean += mean / 7.0;
        }
        let bar = "#".repeat((mean * 120.0) as usize);
        t.row(vec![d.to_string(), if d <= 2 { "yes" } else { "no" }.to_string(), f3(mean), bar]);
    }
    t.finish(&args);
    println!(
        "\nknown-digit mean error {:.3} vs unseen-digit mean error {:.3} ({:.2}x higher)",
        known_mean,
        unknown_mean,
        unknown_mean / known_mean.max(1e-6)
    );
    println!("paper shape check: unseen digits must reconstruct notably worse (>1x).");
}

//! Figure 8: impact of model specialization on detection accuracy.
//!
//! For each BDD-sim subset, compares the static heavyweight YOLO
//! (trained on FULL-DATA), the distilled YOLO-LITE, and the
//! oracle-trained YOLO-SPECIALIZED — each lite/specialized pair trained
//! on the subset it serves.
//!
//! Paper shape: YOLO-SPECIALIZED wins on every subset except FULL-DATA
//! (~1.5× the baseline on average, ~2× on NIGHT-DATA); YOLO-LITE tracks
//! YOLO except on NIGHT-DATA where the teacher's own mistakes cap it.

use std::thread;

use odin_bench::report::{f2, f3, Args, Table};
use odin_bench::workloads::{train_heavy, BddSubsets, TRAIN_ITERS};
use odin_core::specializer::{Specializer, SpecializerConfig};
use odin_data::Subset;

fn main() {
    let args = Args::parse();
    let iters = args.scaled(TRAIN_ITERS, 60);
    let subsets = BddSubsets::generate(&args, 300, 80);

    println!("training static YOLO on FULL-DATA ({iters} iters)...");
    let yolo = train_heavy(args.seed, subsets.train(Subset::Full), iters);

    let spec = Specializer::new(SpecializerConfig {
        train_iters: iters,
        distill_iters: args.scaled(700, 50),
        ..SpecializerConfig::default()
    });

    // Specialized models train independently per subset: parallelize.
    println!("training YOLO-SPECIALIZED per subset (parallel)...");
    let specialized: Vec<_> = thread::scope(|s| {
        let handles: Vec<_> = Subset::ALL
            .iter()
            .enumerate()
            .map(|(i, &subset)| {
                let spec = &spec;
                let frames = subsets.train(subset);
                let seed = args.seed + 100 + i as u64;
                s.spawn(move || spec.build_specialized(seed, frames))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("training thread")).collect()
    });

    println!("distilling YOLO-LITE per subset...");
    let lites: Vec<_> = Subset::ALL
        .iter()
        .enumerate()
        .map(|(i, &subset)| {
            spec.build_lite(args.seed + 200 + i as u64, &yolo, subsets.train(subset))
        })
        .collect();

    let mut t = Table::new(
        "fig8",
        "Impact of Model Specialization on Accuracy (mAP)",
        &["Data", "YOLO", "YOLO-LITE", "YOLO-SPECIALIZED", "spec/YOLO"],
    );
    let mut spec_gain_sum = 0.0f32;
    for (i, &subset) in Subset::ALL.iter().enumerate() {
        let test = subsets.test(subset);
        let m_yolo = yolo.evaluate_map(test);
        let m_lite = lites[i].evaluate_map(test);
        let m_spec = specialized[i].evaluate_map(test);
        let gain = m_spec / m_yolo.max(1e-6);
        spec_gain_sum += gain;
        t.row(vec![
            subset.label().to_string(),
            f3(m_yolo),
            f3(m_lite),
            f3(m_spec),
            format!("{}x", f2(gain)),
        ]);
    }
    t.finish(&args);
    println!(
        "\npaper shape check: specialized should average ~1.5x the static YOLO; measured {:.2}x",
        spec_gain_sum / Subset::ALL.len() as f32
    );
}

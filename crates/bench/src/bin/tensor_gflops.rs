//! Tensor-backend micro-benchmark: GFLOP/s of the matmul kernels (AVX2
//! default and forced-scalar), the im2col convolution forward/backward,
//! the int8 serving kernels, and end-to-end DA-GAN encoding throughput.
//! Used to record before/after numbers for the deterministic parallel
//! backend (see README "Performance"). For int8 rows the "GFLOP/s"
//! column reports integer giga-ops/s on the same 2·m·k·n count.

use std::time::Instant;

use odin_bench::report::{Args, Table};
use odin_data::Image;
use odin_gan::{DaGan, DaGanConfig};
use odin_tensor::layers::Conv2d;
use odin_tensor::ops::{matmul, matmul_nt, matmul_tn};
use odin_tensor::qtensor::{dot_i8, quantize_activations, QConv2d};
use odin_tensor::simd;
use odin_tensor::{Layer, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn rand_tensor(rng: &mut StdRng, shape: &[usize]) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::from_vec((0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect(), shape)
}

/// Times `f` over enough repetitions to fill ~0.3 s, returning seconds
/// per call.
fn time_per_call(mut f: impl FnMut()) -> f64 {
    // Warm-up.
    f();
    let mut reps = 1usize;
    loop {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        let dt = t0.elapsed().as_secs_f64();
        if dt > 0.3 {
            return dt / reps as f64;
        }
        reps = (reps as f64 * (0.4 / dt.max(1e-6))).ceil() as usize + 1;
    }
}

fn main() {
    let args = Args::parse();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut t = Table::new(
        "tensor_gflops",
        "Tensor backend kernel throughput",
        &["Kernel", "Shape", "GFLOP/s", "ms/call"],
    );

    // Matmul family at an im2col-typical size: [rows, patch] x weights.
    let (m, k, n) = (1024usize, 192, 64);
    let flops = (2 * m * k * n) as f64;
    let a = rand_tensor(&mut rng, &[m, k]);
    let b = rand_tensor(&mut rng, &[k, n]);
    let bt = rand_tensor(&mut rng, &[n, k]);
    let at = rand_tensor(&mut rng, &[k, m]);
    for (name, secs) in [
        (
            "matmul",
            time_per_call(|| {
                black_box(matmul(black_box(&a), black_box(&b)));
            }),
        ),
        (
            "matmul_nt",
            time_per_call(|| {
                black_box(matmul_nt(black_box(&a), black_box(&bt)));
            }),
        ),
        (
            "matmul_tn",
            time_per_call(|| {
                black_box(matmul_tn(black_box(&at), black_box(&b)));
            }),
        ),
    ] {
        t.row(vec![
            name.into(),
            format!("{m}x{k}x{n}"),
            format!("{:.2}", flops / secs / 1e9),
            format!("{:.3}", secs * 1e3),
        ]);
    }

    // The same kernels with SIMD forced off: the baseline the AVX2
    // micro-kernels are measured against (and the bit-identity partner
    // exercised by `ODIN_NO_SIMD=1` test runs).
    simd::set_simd_enabled(false);
    for (name, secs) in [
        (
            "matmul_scalar",
            time_per_call(|| {
                black_box(matmul(black_box(&a), black_box(&b)));
            }),
        ),
        (
            "matmul_nt_scalar",
            time_per_call(|| {
                black_box(matmul_nt(black_box(&a), black_box(&bt)));
            }),
        ),
        (
            "matmul_tn_scalar",
            time_per_call(|| {
                black_box(matmul_tn(black_box(&at), black_box(&b)));
            }),
        ),
    ] {
        t.row(vec![
            name.into(),
            format!("{m}x{k}x{n}"),
            format!("{:.2}", flops / secs / 1e9),
            format!("{:.3}", secs * 1e3),
        ]);
    }
    simd::reset_simd();

    // Square matmul (distillation/dense-heavy shape).
    let s = 256usize;
    let sq_a = rand_tensor(&mut rng, &[s, s]);
    let sq_b = rand_tensor(&mut rng, &[s, s]);
    let sq_flops = (2 * s * s * s) as f64;
    let secs = time_per_call(|| {
        black_box(matmul(black_box(&sq_a), black_box(&sq_b)));
    });
    t.row(vec![
        "matmul".into(),
        format!("{s}x{s}x{s}"),
        format!("{:.2}", sq_flops / secs / 1e9),
        format!("{:.3}", secs * 1e3),
    ]);

    // Conv2d forward (inference) and forward+backward (training) at the
    // DA-GAN encoder's first-layer geometry.
    let (bsz, cin, cout, hw) = (8usize, 3usize, 16usize, 48usize);
    let x = rand_tensor(&mut rng, &[bsz, cin, hw, hw]);
    let mut conv = Conv2d::k3(cin, cout, 1, &mut rng);
    let conv_flops = (2 * bsz * cout * cin * 9 * hw * hw) as f64;
    let secs = time_per_call(|| {
        black_box(conv.infer(black_box(&x)));
    });
    t.row(vec![
        "conv2d_fwd".into(),
        format!("{bsz}x{cin}x{hw}x{hw} k3->{cout}"),
        format!("{:.2}", conv_flops / secs / 1e9),
        format!("{:.3}", secs * 1e3),
    ]);
    let secs = time_per_call(|| {
        let y = conv.forward(black_box(&x), true);
        black_box(conv.backward(&y));
    });
    t.row(vec![
        "conv2d_fwd_bwd".into(),
        format!("{bsz}x{cin}x{hw}x{hw} k3->{cout}"),
        format!("{:.2}", 3.0 * conv_flops / secs / 1e9),
        format!("{:.3}", secs * 1e3),
    ]);

    // Int8 serving kernels: the quantized direct NHWC convolution at a
    // Small-detector interior-layer geometry, the madd dot product, and
    // the activation quantizer that feeds both.
    let (qin, qout, qh) = (16usize, 32usize, 24usize);
    let fan_in = qin * 9;
    let qw: Vec<f32> = (0..qout * fan_in).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let qb: Vec<f32> = (0..qout).map(|_| rng.gen_range(-0.5f32..0.5)).collect();
    let qconv = QConv2d::new(&qw, &qb, qin, qout, 3, 1, 1, Some(0.1));
    let qx: Vec<i8> = (0..qh * qh * qin).map(|_| rng.gen_range(-127i32..=127) as i8).collect();
    let (oh, ow) = qconv.out_hw(qh, qh);
    let qconv_flops = (2 * oh * ow * qout * fan_in) as f64;
    let mut qout_buf = Vec::new();
    let secs = time_per_call(|| {
        black_box(qconv.forward_nhwc(black_box(&qx), 0.01, qh, qh, &mut qout_buf));
    });
    t.row(vec![
        "conv2d_int8".into(),
        format!("{qh}x{qh}x{qin} k3->{qout}"),
        format!("{:.2}", qconv_flops / secs / 1e9),
        format!("{:.3}", secs * 1e3),
    ]);

    let dn = 65536usize;
    let da: Vec<i8> = (0..dn).map(|_| rng.gen_range(-127i32..=127) as i8).collect();
    let db: Vec<i8> = (0..dn).map(|_| rng.gen_range(-127i32..=127) as i8).collect();
    let secs = time_per_call(|| {
        black_box(dot_i8(black_box(&da), black_box(&db)));
    });
    t.row(vec![
        "dot_i8".into(),
        format!("{dn}"),
        format!("{:.2}", (2 * dn) as f64 / secs / 1e9),
        format!("{:.3}", secs * 1e3),
    ]);

    let acts: Vec<f32> = (0..1 << 16).map(|_| rng.gen_range(-4.0f32..4.0)).collect();
    let mut qbuf = Vec::new();
    let secs = time_per_call(|| {
        black_box(quantize_activations(black_box(&acts), &mut qbuf));
    });
    t.row(vec![
        "quantize_i8".into(),
        format!("{} f32", acts.len()),
        "-".into(),
        format!("{:.3}", secs * 1e3),
    ]);

    // End-to-end DA-GAN encode of a 16-frame batch (the pipeline's
    // buffered-frame path).
    let mut dagan = DaGan::new(DaGanConfig::bdd(), &mut rng);
    let frames = vec![Image::new(3, 48, 48); 16];
    let refs: Vec<&Image> = frames.iter().collect();
    let secs = time_per_call(|| {
        black_box(dagan.encode_images(black_box(&refs)));
    });
    t.row(vec![
        "dagan_encode".into(),
        "16x3x48x48".into(),
        "-".into(),
        format!("{:.3}", secs * 1e3),
    ]);

    t.finish(&args);
}

//! Table 3: cross-subset detection accuracy of specialized models.
//!
//! Each cluster-specialized model (C-α ≈ clear-day, C-β ≈ night,
//! C-γ ≈ rain/overcast, C-δ ≈ snow — the paper's Table 2 mapping) is
//! evaluated on *every* subset, against the heavyweight baseline trained
//! on FULL-DATA. Per §6.3, training sets are balanced to the smallest
//! cluster's size.
//!
//! Paper shape: the diagonal dominates (each model wins its own
//! subset); the day model collapses on NIGHT-DATA (~5× below the night
//! model); day-biased models still do fine on RAIN/SNOW.

use std::thread;

use odin_bench::report::{f3, Args, Table};
use odin_bench::workloads::{train_heavy, BddSubsets, TRAIN_ITERS};
use odin_core::specializer::{Specializer, SpecializerConfig};
use odin_data::{Frame, Subset};

/// The four specialized clusters, labeled as the paper labels them.
const CLUSTERS: [(&str, Subset); 4] = [
    ("C-α (day)", Subset::Day),
    ("C-β (night)", Subset::Night),
    ("C-γ (rain)", Subset::Rain),
    ("C-δ (snow)", Subset::Snow),
];

fn main() {
    let args = Args::parse();
    let iters = args.scaled(TRAIN_ITERS, 60);
    let subsets = BddSubsets::generate(&args, 300, 80);

    println!("training baseline YOLO on FULL-DATA...");
    let baseline = train_heavy(args.seed, subsets.train(Subset::Full), iters);

    // Balance training sets to the smallest cluster (§6.3).
    let train_sets: Vec<&[Frame]> = CLUSTERS.iter().map(|&(_, s)| subsets.train(s)).collect();
    let balanced = Specializer::balanced_subsets(&train_sets, args.seed);
    let balanced_owned: Vec<Vec<Frame>> =
        balanced.iter().map(|set| set.iter().map(|&f| f.clone()).collect()).collect();

    let spec =
        Specializer::new(SpecializerConfig { train_iters: iters, ..SpecializerConfig::default() });
    println!("training 4 specialized models on balanced clusters (parallel)...");
    let mut models: Vec<_> = thread::scope(|s| {
        let handles: Vec<_> = balanced_owned
            .iter()
            .enumerate()
            .map(|(i, frames)| {
                let spec = &spec;
                let seed = args.seed + 300 + i as u64;
                s.spawn(move || spec.build_specialized(seed, frames))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("training thread")).collect()
    });

    let mut t = Table::new(
        "table3",
        "Cross-Subset Detection Accuracy (mAP)",
        &["Data", "Baseline", "C-α", "C-β", "C-γ", "C-δ"],
    );
    for &subset in Subset::ALL.iter() {
        let test = subsets.test(subset);
        let mut row = vec![subset.label().to_string(), f3(baseline.evaluate_map(test))];
        for m in models.iter_mut() {
            row.push(f3(m.evaluate_map(test)));
        }
        t.row(row);
    }
    t.finish(&args);
    println!("\npaper shape check: each specialized model should win its own subset;");
    println!("C-α (day) should collapse on NIGHT-DATA while C-β (night) wins it.");
}

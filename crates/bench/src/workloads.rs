//! Shared experiment workloads: dataset construction and model training
//! used by several table/figure harnesses.

use odin_data::{Frame, SceneGen, Subset};
use odin_detect::Detector;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::Args;

/// The five BDD-sim evaluation subsets with train/test splits (§6.2's
/// "BDD Clusters").
pub struct BddSubsets {
    /// `(subset, train frames, test frames)` in the paper's table order.
    pub splits: Vec<(Subset, Vec<Frame>, Vec<Frame>)>,
}

impl BddSubsets {
    /// Generates all five subsets. `train_per` / `test_per` are the
    /// per-subset sizes before `--scale`.
    pub fn generate(args: &Args, train_per: usize, test_per: usize) -> Self {
        let gen = SceneGen::default();
        let mut rng = StdRng::seed_from_u64(args.seed);
        let train_n = args.scaled(train_per, 30);
        let test_n = args.scaled(test_per, 15);
        let splits = Subset::ALL
            .iter()
            .map(|&s| {
                let train = gen.subset_frames(&mut rng, s, train_n);
                let test = gen.subset_frames(&mut rng, s, test_n);
                (s, train, test)
            })
            .collect();
        BddSubsets { splits }
    }

    /// The train split for a subset.
    pub fn train(&self, s: Subset) -> &[Frame] {
        &self.splits.iter().find(|(x, _, _)| *x == s).expect("subset exists").1
    }

    /// The test split for a subset.
    pub fn test(&self, s: Subset) -> &[Frame] {
        &self.splits.iter().find(|(x, _, _)| *x == s).expect("subset exists").2
    }
}

/// Trains the heavyweight YoloSim on a frame set (the static baseline).
pub fn train_heavy(seed: u64, frames: &[Frame], iters: usize) -> Detector {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Detector::heavy(48, &mut rng);
    d.train_oracle(&mut rng, frames, iters, 8);
    d
}

/// Trains a small (YoloSpecialized-architecture) detector on a frame
/// set with oracle labels.
pub fn train_small(seed: u64, frames: &[Frame], iters: usize) -> Detector {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Detector::small(48, &mut rng);
    d.train_oracle(&mut rng, frames, iters, 8);
    d
}

/// Default oracle-training iterations at scale 1.0.
pub const TRAIN_ITERS: usize = 900;

/// DA-GAN training iterations for the BDD encoder at scale 1.0.
pub const DAGAN_ITERS: usize = 1200;

/// Trains (or loads from cache) the pre-trained heavyweight YOLO teacher
/// on a held-out FULL-DATA sample — the paper's off-the-shelf YOLO. The
/// query experiments hand this to ODIN as the initial model.
pub fn pretrained_teacher(args: &Args) -> Detector {
    pretrained_teacher_on(args, Subset::Full)
}

/// Like [`pretrained_teacher`], but trained on a specific subset. The
/// streaming experiments (Figure 9, Table 7) use the *pre-drift* world —
/// NIGHT-DATA, the stream's first concept — as the static system's
/// training distribution, matching the paper's deployment story: the
/// baseline was trained before the drift arrived.
pub fn pretrained_teacher_on(args: &Args, subset: Subset) -> Detector {
    let iters = args.scaled(TRAIN_ITERS, 60);
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x7EAC);
    let mut model = Detector::heavy(48, &mut rng);
    let cache = args.out_dir.join("cache").join(format!(
        "teacher_{}_{}_{}.odst",
        args.seed,
        iters,
        subset.label()
    ));
    if let Some(flat) = crate::cache::load_params(&cache, model.export_len()) {
        model.import_params(&flat);
        eprintln!("loaded cached teacher from {}", cache.display());
        return model;
    }
    let gen = SceneGen::default();
    let frames = gen.subset_frames(&mut rng, subset, args.scaled(400, 80));
    eprintln!("pre-training heavyweight teacher on {} ({iters} iters)...", subset.label());
    model.train_oracle(&mut rng, &frames, iters, 8);
    crate::cache::store_params(&cache, &model.export_params());
    model
}

/// Trains (or loads from the cache under `<out>/cache/`) the BDD-sim
/// DA-GAN used by the latent-space experiments. The model is trained on
/// a held-out mixed-condition sample — the "undefined" images of §6.2.
pub fn bdd_dagan(args: &Args) -> odin_gan::DaGan {
    use odin_gan::{DaGan, DaGanConfig};
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xDA6A);
    let cfg = DaGanConfig::bdd();
    let mut model = DaGan::new(cfg, &mut rng);
    let cache = args.out_dir.join("cache").join(format!(
        "dagan_bdd_{}_{}.odst",
        args.seed,
        args.scaled(DAGAN_ITERS, 100)
    ));
    if let Some(flat) = crate::cache::load_params(&cache, model.export_len()) {
        model.import_params(&flat);
        eprintln!("loaded cached DA-GAN from {}", cache.display());
        return model;
    }
    let gen = SceneGen::default();
    let held_out: Vec<odin_data::Image> = gen
        .subset_frames(&mut rng, Subset::Full, args.scaled(600, 100))
        .into_iter()
        .map(|f| f.image)
        .collect();
    eprintln!("training BDD DA-GAN ({} iterations)...", args.scaled(DAGAN_ITERS, 100));
    model.train(&mut rng, &held_out, args.scaled(DAGAN_ITERS, 100), 8);
    crate::cache::store_params(&cache, &model.export_params());
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsets_generate_all_five() {
        let args = Args { scale: 0.1, ..Args::default() };
        let b = BddSubsets::generate(&args, 100, 50);
        assert_eq!(b.splits.len(), 5);
        assert!(!b.train(Subset::Night).is_empty());
        assert!(!b.test(Subset::Rain).is_empty());
    }
}

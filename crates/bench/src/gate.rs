//! Benchmark regression gating.
//!
//! Compares a freshly measured experiment table against a committed
//! baseline (`results/<id>.json`) and flags rows whose numeric column
//! dropped by more than an allowed percentage. The table JSON is the
//! string-only format written by [`crate::report::Table::to_json`], so
//! the reader is a small hand-rolled parser rather than a serde
//! pipeline — the bench crate stays free of a JSON dependency.

/// Extracts the `"rows"` array from a table JSON document.
///
/// Only the subset of JSON that [`crate::report::Table::to_json`] emits
/// is understood: an object containing a `"rows"` key whose value is an
/// array of arrays of strings. Whitespace layout is ignored.
pub fn parse_rows(json: &str) -> Result<Vec<Vec<String>>, String> {
    let key = json.find("\"rows\"").ok_or("no \"rows\" key in table JSON")?;
    let bytes = json.as_bytes();
    let mut i = key + "\"rows\"".len();
    // Skip to the opening bracket of the rows array.
    while i < bytes.len() && bytes[i] != b'[' {
        i += 1;
    }
    if i == bytes.len() {
        return Err("\"rows\" key has no array value".to_string());
    }
    i += 1; // past '['

    let chars: Vec<char> = json[i..].chars().collect();
    let mut pos = 0usize;
    let mut rows = Vec::new();
    loop {
        skip_ws(&chars, &mut pos);
        match chars.get(pos) {
            Some(']') => return Ok(rows),
            Some('[') => {
                pos += 1;
                rows.push(parse_string_row(&chars, &mut pos)?);
            }
            Some(',') => pos += 1,
            Some(c) => return Err(format!("unexpected {c:?} in rows array")),
            None => return Err("unterminated rows array".to_string()),
        }
    }
}

/// Parses one `["cell", ...]` row; `pos` is just past the opening `[`.
fn parse_string_row(chars: &[char], pos: &mut usize) -> Result<Vec<String>, String> {
    let mut row = Vec::new();
    loop {
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some(']') => {
                *pos += 1;
                return Ok(row);
            }
            Some(',') => *pos += 1,
            Some('"') => {
                *pos += 1;
                row.push(parse_string(chars, pos)?);
            }
            Some(c) => return Err(format!("unexpected {c:?} in row")),
            None => return Err("unterminated row".to_string()),
        }
    }
}

/// Parses a JSON string body; `pos` is just past the opening quote.
fn parse_string(chars: &[char], pos: &mut usize) -> Result<String, String> {
    let mut out = String::new();
    while let Some(&c) = chars.get(*pos) {
        *pos += 1;
        match c {
            '"' => return Ok(out),
            '\\' => {
                let esc = chars.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let hex: String =
                            chars.get(*pos..*pos + 4).ok_or("short \\u")?.iter().collect();
                        *pos += 4;
                        let code =
                            u32::from_str_radix(&hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("unknown escape \\{other}")),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while matches!(chars.get(*pos), Some(' ' | '\n' | '\r' | '\t')) {
        *pos += 1;
    }
}

/// One row's baseline-vs-candidate comparison.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// Row label (first cell of the baseline row).
    pub label: String,
    /// Baseline value of the gated column.
    pub baseline: f64,
    /// Freshly measured value of the gated column.
    pub candidate: f64,
    /// Drop relative to baseline in percent (negative = improvement).
    pub drop_pct: f64,
    /// Whether the drop exceeds the allowed threshold.
    pub failed: bool,
}

/// Compares `column` of every baseline row against the candidate row
/// with the same label (first cell). A row fails if its value dropped by
/// more than `max_drop_pct` percent, or if the candidate is missing the
/// row or carries a non-numeric cell.
pub fn gate(
    baseline: &[Vec<String>],
    candidate: &[Vec<String>],
    column: usize,
    max_drop_pct: f64,
) -> Result<Vec<GateRow>, String> {
    let mut out = Vec::new();
    for base_row in baseline {
        let label = base_row.first().ok_or("empty baseline row")?.clone();
        let cand_row = candidate
            .iter()
            .find(|r| r.first() == Some(&label))
            .ok_or_else(|| format!("candidate is missing row {label:?}"))?;
        let base = cell_f64(base_row, column, &label)?;
        let cand = cell_f64(cand_row, column, &label)?;
        if base <= 0.0 {
            return Err(format!("baseline value for {label:?} is not positive: {base}"));
        }
        let drop_pct = (base - cand) / base * 100.0;
        out.push(GateRow {
            label,
            baseline: base,
            candidate: cand,
            drop_pct,
            failed: drop_pct > max_drop_pct,
        });
    }
    Ok(out)
}

fn cell_f64(row: &[String], column: usize, label: &str) -> Result<f64, String> {
    let cell = row.get(column).ok_or_else(|| format!("row {label:?} has no column {column}"))?;
    cell.parse::<f64>().map_err(|e| format!("row {label:?} column {column} ({cell:?}): {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Table;

    fn table_json(rows: &[&[&str]]) -> String {
        let mut t = Table::new("t", "gate test", &["Model", "FPS"]);
        for r in rows {
            t.row(r.iter().map(|s| s.to_string()).collect());
        }
        t.to_json()
    }

    #[test]
    fn parse_roundtrips_table_json() {
        let json = table_json(&[&["YOLO", "625"], &["LITE", "2927"]]);
        let rows = parse_rows(&json).expect("parse");
        assert_eq!(rows, vec![vec!["YOLO", "625"], vec!["LITE", "2927"]]);
    }

    #[test]
    fn parse_handles_escapes_and_empty() {
        let mut t = Table::new("t", "x", &["a"]);
        t.row(vec!["quote \" slash \\ nl \n".to_string()]);
        let rows = parse_rows(&t.to_json()).expect("parse");
        assert_eq!(rows[0][0], "quote \" slash \\ nl \n");

        let empty = Table::new("t", "x", &["a"]);
        assert!(parse_rows(&empty.to_json()).expect("parse").is_empty());
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_rows("{}").is_err());
        assert!(parse_rows("{\"rows\": [[\"unterminated]}").is_err());
    }

    #[test]
    fn gate_passes_within_threshold_and_flags_drops() {
        let base = vec![
            vec!["A".to_string(), "100".to_string()],
            vec!["B".to_string(), "200".to_string()],
        ];
        let cand =
            vec![vec!["A".to_string(), "90".to_string()], vec!["B".to_string(), "240".to_string()]];
        let rows = gate(&base, &cand, 1, 15.0).expect("gate");
        assert!(!rows[0].failed, "10% drop is within a 15% budget");
        assert!(!rows[1].failed, "improvements never fail");
        assert!(rows[1].drop_pct < 0.0);

        let rows = gate(&base, &cand, 1, 5.0).expect("gate");
        assert!(rows[0].failed, "10% drop exceeds a 5% budget");
    }

    #[test]
    fn gate_errors_on_missing_rows_and_bad_cells() {
        let base = vec![vec!["A".to_string(), "100".to_string()]];
        assert!(gate(&base, &[], 1, 15.0).is_err());
        let cand = vec![vec!["A".to_string(), "fast".to_string()]];
        assert!(gate(&base, &cand, 1, 15.0).is_err());
    }
}

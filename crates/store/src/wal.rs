//! Append-only write-ahead log with per-record CRCs.
//!
//! Record layout (little-endian):
//!
//! ```text
//! marker   u8   0xA5
//! seq      u64  monotonically increasing, starts at 1
//! len      u32  payload length
//! crc      u32  CRC-32 of (seq ‖ payload)
//! payload  len bytes
//! ```
//!
//! The reader walks records until the first one that is incomplete or
//! fails its CRC — a torn tail from a crash mid-append — and reports
//! everything before it. [`WalWriter::open`] truncates that torn tail
//! so new appends extend a clean log. The CRC covers the sequence
//! number too, so a record spliced in from another log position is
//! rejected.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::error::StoreError;

const RECORD_MARKER: u8 = 0xA5;
const RECORD_HEADER_LEN: usize = 1 + 8 + 4 + 4;

/// One verified record read back from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic sequence number (1-based).
    pub seq: u64,
    /// Application payload (odin-core encodes `WalEvent`s here).
    pub payload: Vec<u8>,
}

/// Result of scanning a log: the verified records plus whether a torn
/// or corrupt tail was skipped.
#[derive(Debug, Default)]
pub struct WalReader {
    /// Records that passed their CRC, in sequence order.
    pub records: Vec<WalRecord>,
    /// True if bytes after the last good record were unreadable (torn
    /// append or bit rot) and were ignored.
    pub torn_tail: bool,
}

fn record_crc(seq: u64, payload: &[u8]) -> u32 {
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(payload);
    crc32(&buf)
}

/// Scan `bytes`, returning verified records, the byte offset just past
/// the last good record, and whether a torn tail follows it.
fn scan(bytes: &[u8]) -> (Vec<WalRecord>, usize, bool) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut expect_seq = 1u64;
    while bytes.len() - pos >= RECORD_HEADER_LEN {
        let at = pos;
        if bytes[at] != RECORD_MARKER {
            return (records, pos, true);
        }
        let seq = u64::from_le_bytes(bytes[at + 1..at + 9].try_into().unwrap());
        let len = u32::from_le_bytes(bytes[at + 9..at + 13].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[at + 13..at + 17].try_into().unwrap());
        let body_start = at + RECORD_HEADER_LEN;
        let Some(body_end) = body_start.checked_add(len) else {
            return (records, pos, true);
        };
        if body_end > bytes.len() {
            return (records, pos, true);
        }
        let payload = &bytes[body_start..body_end];
        if seq != expect_seq || record_crc(seq, payload) != crc {
            return (records, pos, true);
        }
        records.push(WalRecord { seq, payload: payload.to_vec() });
        expect_seq += 1;
        pos = body_end;
    }
    let torn = pos != bytes.len();
    (records, pos, torn)
}

/// Read every verified record from the log at `path`. A missing file is
/// an empty log, not an error; a torn tail is reported, not fatal.
pub fn read_wal(path: &Path) -> Result<WalReader, StoreError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalReader::default()),
        Err(e) => return Err(e.into()),
    };
    let (records, _, torn_tail) = scan(&bytes);
    Ok(WalReader { records, torn_tail })
}

/// Appender over a WAL file. Opening recovers the existing log (and
/// truncates any torn tail); appends are durable after [`WalWriter::sync`].
pub struct WalWriter {
    file: File,
    path: PathBuf,
    next_seq: u64,
}

impl WalWriter {
    /// Open (or create) the log at `path`, scanning existing records to
    /// resume the sequence. A torn tail left by a crash is truncated
    /// away so the next append starts on a clean boundary.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, good_len, torn) = scan(&bytes);
        if torn {
            file.set_len(good_len as u64)?;
        }
        file.seek(SeekFrom::Start(good_len as u64))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            next_seq: records.last().map_or(1, |r| r.seq + 1),
        })
    }

    /// Path this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Sequence number of the last appended record (0 if none).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Append one record, returning its sequence number. The bytes are
    /// written and flushed to the OS; call [`WalWriter::sync`] to force
    /// them to disk.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        let seq = self.next_seq;
        let mut buf = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        buf.push(RECORD_MARKER);
        buf.extend_from_slice(&seq.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&record_crc(seq, payload).to_le_bytes());
        buf.extend_from_slice(payload);
        self.file.write_all(&buf)?;
        self.file.flush()?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// fsync the log file.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "odin-wal-{}-{:?}-{name}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn append_and_read_back() {
        let path = temp_path("basic");
        std::fs::remove_file(&path).ok();
        let mut w = WalWriter::open(&path).unwrap();
        assert_eq!(w.append(b"one").unwrap(), 1);
        assert_eq!(w.append(b"two").unwrap(), 2);
        assert_eq!(w.append(b"").unwrap(), 3);
        w.sync().unwrap();
        drop(w);

        let r = read_wal(&path).unwrap();
        assert!(!r.torn_tail);
        assert_eq!(r.records.len(), 3);
        assert_eq!(r.records[0].payload, b"one");
        assert_eq!(r.records[1].payload, b"two");
        assert_eq!(r.records[2].payload, b"");
        assert_eq!(r.records[2].seq, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_empty_log() {
        let r = read_wal(&temp_path("never-created")).unwrap();
        assert!(r.records.is_empty());
        assert!(!r.torn_tail);
    }

    #[test]
    fn reopen_resumes_sequence() {
        let path = temp_path("resume");
        std::fs::remove_file(&path).ok();
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(b"a").unwrap();
            w.append(b"b").unwrap();
        }
        let mut w = WalWriter::open(&path).unwrap();
        assert_eq!(w.next_seq(), 3);
        w.append(b"c").unwrap();
        let r = read_wal(&path).unwrap();
        assert_eq!(r.records.iter().map(|x| x.seq).collect::<Vec<_>>(), vec![1, 2, 3]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_skipped_and_truncated_on_reopen() {
        let path = temp_path("torn");
        std::fs::remove_file(&path).ok();
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(b"keep-1").unwrap();
            w.append(b"keep-2").unwrap();
        }
        // Simulate a crash mid-append: half a record at the tail.
        let good_len = std::fs::metadata(&path).unwrap().len();
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[RECORD_MARKER, 3, 0, 0]).unwrap();
        }
        let r = read_wal(&path).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.records.len(), 2);

        // Reopen truncates the torn bytes and resumes cleanly.
        let mut w = WalWriter::open(&path).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len);
        assert_eq!(w.append(b"keep-3").unwrap(), 3);
        let r = read_wal(&path).unwrap();
        assert!(!r.torn_tail);
        assert_eq!(r.records.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_stops_replay_there() {
        let path = temp_path("corrupt");
        std::fs::remove_file(&path).ok();
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(b"good").unwrap();
            w.append(b"flipped").unwrap();
            w.append(b"unreachable").unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload bit in the second record.
        let second_start = RECORD_HEADER_LEN + 4;
        bytes[second_start + RECORD_HEADER_LEN] ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();

        let r = read_wal(&path).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.records[0].payload, b"good");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn spliced_record_with_wrong_seq_rejected() {
        let path = temp_path("splice");
        std::fs::remove_file(&path).ok();
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(b"aaaa").unwrap();
            w.append(b"bbbb").unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        let rec_len = RECORD_HEADER_LEN + 4;
        // Duplicate record 1 where record 2 should be: CRC is valid for
        // seq 1, but the position expects seq 2.
        let mut spliced = bytes[..rec_len].to_vec();
        spliced.extend_from_slice(&bytes[..rec_len]);
        std::fs::write(&path, &spliced).unwrap();
        let r = read_wal(&path).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.records.len(), 1);
        std::fs::remove_file(&path).ok();
    }
}

//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`).
//!
//! The table is built at compile time so the hot path is a plain
//! table-driven loop with no lazy initialisation or locking.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` (same parameters as zlib's `crc32`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // Reference values from the zlib implementation.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit_flip() {
        let mut data = b"odin checkpoint payload".to_vec();
        let clean = crc32(&data);
        data[7] ^= 0x01;
        assert_ne!(crc32(&data), clean);
    }
}

//! Little-endian binary encoder/decoder and the [`Persist`] trait.
//!
//! The vendored `serde` is derive-only (no serializer backend ships in
//! this workspace), so persisted state is written through this small
//! hand-rolled codec instead. Layout rules:
//!
//! * all integers and floats are little-endian,
//! * `usize` is always written as `u64` so the format is identical on
//!   32- and 64-bit hosts,
//! * variable-length data (`bytes`, `str`, slices) is prefixed with a
//!   `u64` element count,
//! * floats are persisted via `to_bits`/`from_bits`, so the roundtrip
//!   is bit-exact (including NaN payloads and signed zeros) — a
//!   requirement for ODIN's bit-identical restore contract.
//!
//! Every `Decoder` read is bounds-checked and returns
//! [`StoreError::Truncated`] instead of panicking, so a corrupt or
//! truncated payload degrades into a recoverable error.

use crate::error::StoreError;

/// Append-only byte sink for persisted state.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// New empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// New encoder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the encoded bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Write one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Write a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as a `u64` (host-width independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Write an `f32` bit-exactly.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Write an `f64` bit-exactly.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Write a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Write raw bytes with no length prefix (caller knows the length).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Write a length-prefixed `f32` slice, bit-exactly.
    pub fn put_f32s(&mut self, v: &[f32]) {
        self.put_usize(v.len());
        self.buf.reserve(v.len() * 4);
        for &x in v {
            self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }

    /// Write a length-prefixed `u32` slice.
    pub fn put_u32s(&mut self, v: &[u32]) {
        self.put_usize(v.len());
        self.buf.reserve(v.len() * 4);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Write a length-prefixed `usize` slice (as `u64`s).
    pub fn put_usizes(&mut self, v: &[usize]) {
        self.put_usize(v.len());
        self.buf.reserve(v.len() * 8);
        for &x in v {
            self.buf.extend_from_slice(&(x as u64).to_le_bytes());
        }
    }
}

/// Bounds-checked reader over encoded bytes.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True if every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Error unless the payload was consumed exactly — catches both
    /// truncation (handled earlier) and trailing garbage.
    pub fn finish(self, context: &'static str) -> Result<(), StoreError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(StoreError::Malformed { context })
        }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated { context });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn take_u8(&mut self, context: &'static str) -> Result<u8, StoreError> {
        Ok(self.take(1, context)?[0])
    }

    /// Read a `bool`; any byte other than 0/1 is malformed.
    pub fn take_bool(&mut self, context: &'static str) -> Result<bool, StoreError> {
        match self.take_u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(StoreError::Malformed { context }),
        }
    }

    /// Read a little-endian `u32`.
    pub fn take_u32(&mut self, context: &'static str) -> Result<u32, StoreError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn take_u64(&mut self, context: &'static str) -> Result<u64, StoreError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read a `usize` written by [`Encoder::put_usize`]; values that do
    /// not fit the host `usize` are malformed.
    pub fn take_usize(&mut self, context: &'static str) -> Result<usize, StoreError> {
        let v = self.take_u64(context)?;
        usize::try_from(v).map_err(|_| StoreError::Malformed { context })
    }

    /// Read an `f32` bit-exactly.
    pub fn take_f32(&mut self, context: &'static str) -> Result<f32, StoreError> {
        Ok(f32::from_bits(self.take_u32(context)?))
    }

    /// Read an `f64` bit-exactly.
    pub fn take_f64(&mut self, context: &'static str) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.take_u64(context)?))
    }

    /// Read a length-prefixed byte slice (borrowed from the input).
    pub fn take_bytes(&mut self, context: &'static str) -> Result<&'a [u8], StoreError> {
        let n = self.take_usize(context)?;
        self.take(n, context)
    }

    /// Read `n` raw bytes with no length prefix.
    pub fn take_raw(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], StoreError> {
        self.take(n, context)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn take_str(&mut self, context: &'static str) -> Result<String, StoreError> {
        let b = self.take_bytes(context)?;
        String::from_utf8(b.to_vec()).map_err(|_| StoreError::Malformed { context })
    }

    /// Read a length-prefixed `f32` slice, bit-exactly.
    pub fn take_f32s(&mut self, context: &'static str) -> Result<Vec<f32>, StoreError> {
        let n = self.take_usize(context)?;
        let b = self.take(n.checked_mul(4).ok_or(StoreError::Malformed { context })?, context)?;
        Ok(b.chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
            .collect())
    }

    /// Read a length-prefixed `u32` slice.
    pub fn take_u32s(&mut self, context: &'static str) -> Result<Vec<u32>, StoreError> {
        let n = self.take_usize(context)?;
        let b = self.take(n.checked_mul(4).ok_or(StoreError::Malformed { context })?, context)?;
        Ok(b.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
    }

    /// Read a length-prefixed `usize` slice written by
    /// [`Encoder::put_usizes`].
    pub fn take_usizes(&mut self, context: &'static str) -> Result<Vec<usize>, StoreError> {
        let n = self.take_usize(context)?;
        let b = self.take(n.checked_mul(8).ok_or(StoreError::Malformed { context })?, context)?;
        b.chunks_exact(8)
            .map(|c| {
                let v = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
                usize::try_from(v).map_err(|_| StoreError::Malformed { context })
            })
            .collect()
    }
}

/// Implemented by every type that serializes into the store format.
///
/// `persist`/`restore` must be exact inverses: restoring the persisted
/// bytes yields a value whose re-encoding is byte-identical. That
/// property is what makes whole-pipeline checkpoints bit-identical.
pub trait Persist: Sized {
    /// Append this value's encoding to `enc`.
    fn persist(&self, enc: &mut Encoder);

    /// Decode a value previously written by [`Persist::persist`].
    fn restore(dec: &mut Decoder<'_>) -> Result<Self, StoreError>;

    /// Encode into a fresh byte vector.
    fn to_store_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.persist(&mut enc);
        enc.into_bytes()
    }

    /// Decode from `bytes`, requiring the payload to be consumed
    /// exactly (trailing bytes are malformed).
    fn from_store_bytes(bytes: &[u8], context: &'static str) -> Result<Self, StoreError> {
        let mut dec = Decoder::new(bytes);
        let v = Self::restore(&mut dec)?;
        dec.finish(context)?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut enc = Encoder::new();
        enc.put_u8(0xAB);
        enc.put_bool(true);
        enc.put_u32(0xDEAD_BEEF);
        enc.put_u64(u64::MAX - 7);
        enc.put_usize(12345);
        enc.put_f32(-0.0);
        enc.put_f64(f64::NAN);
        enc.put_str("Δ-band");
        enc.put_f32s(&[1.5, f32::INFINITY, -3.25]);
        enc.put_u32s(&[0, 7, u32::MAX]);
        enc.put_usizes(&[9, 0, 42]);
        let bytes = enc.into_bytes();

        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.take_u8("t").unwrap(), 0xAB);
        assert!(dec.take_bool("t").unwrap());
        assert_eq!(dec.take_u32("t").unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.take_u64("t").unwrap(), u64::MAX - 7);
        assert_eq!(dec.take_usize("t").unwrap(), 12345);
        let z = dec.take_f32("t").unwrap();
        assert_eq!(z.to_bits(), (-0.0f32).to_bits());
        assert!(dec.take_f64("t").unwrap().is_nan());
        assert_eq!(dec.take_str("t").unwrap(), "Δ-band");
        let fs = dec.take_f32s("t").unwrap();
        assert_eq!(fs[0], 1.5);
        assert!(fs[1].is_infinite());
        assert_eq!(fs[2], -3.25);
        assert_eq!(dec.take_u32s("t").unwrap(), vec![0, 7, u32::MAX]);
        assert_eq!(dec.take_usizes("t").unwrap(), vec![9, 0, 42]);
        dec.finish("t").unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut enc = Encoder::new();
        enc.put_f32s(&[1.0, 2.0, 3.0]);
        let mut bytes = enc.into_bytes();
        bytes.truncate(bytes.len() - 2);
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.take_f32s("t"), Err(StoreError::Truncated { .. })));
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut enc = Encoder::new();
        enc.put_u32(1);
        enc.put_u8(0xFF);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        dec.take_u32("t").unwrap();
        assert!(matches!(dec.finish("t"), Err(StoreError::Malformed { .. })));
    }

    #[test]
    fn bad_bool_is_malformed() {
        let bytes = [2u8];
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.take_bool("t"), Err(StoreError::Malformed { .. })));
    }
}

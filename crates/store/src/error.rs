//! Error type shared by every reader in the store.
//!
//! Corruption must surface as a value the pipeline can react to (cold
//! bootstrap with a logged reason), never as a panic, so every failure
//! mode gets its own variant with enough context to log.

use std::fmt;
use std::io;

/// Everything that can go wrong reading or writing persisted state.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure (open/read/write/rename/fsync).
    Io(io::Error),
    /// The file does not start with the expected magic bytes — it is
    /// not a store file at all (or the header was overwritten).
    BadMagic {
        /// The four bytes actually found at the start of the file.
        found: [u8; 4],
    },
    /// The format version is newer than this build understands.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
        /// Highest version this build can read.
        supported: u32,
    },
    /// The file ended before the structure it promised was complete.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A CRC check failed: the bytes were altered after being written.
    CorruptSection {
        /// Section name (or `"header"` / `"wal record"`).
        section: String,
        /// CRC recorded in the file.
        expected: u32,
        /// CRC computed over the bytes actually present.
        actual: u32,
    },
    /// A section the decoder requires is absent from the checkpoint.
    MissingSection {
        /// Name of the absent section.
        section: &'static str,
    },
    /// Structurally invalid payload inside an otherwise intact
    /// (CRC-verified) section — e.g. an enum tag out of range.
    Malformed {
        /// What the decoder was expecting.
        context: &'static str,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?}: not an odin-store file")
            }
            StoreError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported format version {found} (this build reads <= {supported})")
            }
            StoreError::Truncated { context } => {
                write!(f, "truncated file while reading {context}")
            }
            StoreError::CorruptSection { section, expected, actual } => write!(
                f,
                "crc mismatch in {section}: expected {expected:#010x}, got {actual:#010x}"
            ),
            StoreError::MissingSection { section } => {
                write!(f, "required section '{section}' missing from checkpoint")
            }
            StoreError::Malformed { context } => {
                write!(f, "malformed payload while decoding {context}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

//! Sectioned, checksummed checkpoint container.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! magic            4 bytes   "ODST"
//! format version   u32
//! section count    u32
//! per section:
//!   name           len-prefixed UTF-8 (u64 len + bytes)
//!   payload len    u64
//!   payload CRC-32 u32
//! header CRC-32    u32       over everything above
//! payloads         concatenated, in section-table order
//! ```
//!
//! The header carries its own CRC so a bit flip in the section table is
//! distinguished from a bit flip in a payload; payload CRCs are checked
//! eagerly on open so a corrupt checkpoint is rejected as a whole.
//!
//! Writes go through [`CheckpointBuilder::write_atomic`]: the bytes are
//! written to a sibling `*.tmp` file, fsynced, renamed over the target,
//! and the parent directory is fsynced. A crash at any point leaves
//! either the old complete file or the new complete file — never a torn
//! mix.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::Path;

use crate::codec::{Decoder, Encoder};
use crate::crc::crc32;
use crate::error::StoreError;

/// File magic: every checkpoint starts with these four bytes.
pub const MAGIC: [u8; 4] = *b"ODST";

/// Current checkpoint format version. Readers reject files with a
/// version greater than this.
pub const FORMAT_VERSION: u32 = 1;

/// Accumulates named sections and serializes them into the container
/// format.
#[derive(Default)]
pub struct CheckpointBuilder {
    sections: Vec<(String, Vec<u8>)>,
}

impl CheckpointBuilder {
    /// New builder with no sections.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a named section. Order is preserved; names should be unique
    /// (readers see the first occurrence).
    pub fn section(&mut self, name: &str, payload: Vec<u8>) -> &mut Self {
        self.sections.push((name.to_string(), payload));
        self
    }

    /// Serialize the container to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut header = Encoder::new();
        header.put_raw(&MAGIC);
        header.put_u32(FORMAT_VERSION);
        header.put_u32(self.sections.len() as u32);
        for (name, payload) in &self.sections {
            header.put_str(name);
            header.put_usize(payload.len());
            header.put_u32(crc32(payload));
        }
        let header_crc = crc32(header.bytes());
        header.put_u32(header_crc);

        let mut out = header.into_bytes();
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Write the container to `path` atomically: tmp file in the same
    /// directory + `fsync` + `rename` + directory `fsync`.
    pub fn write_atomic(&self, path: &Path) -> Result<(), StoreError> {
        write_atomic(path, &self.to_bytes())
    }
}

/// Write `bytes` to `path` atomically (tmp + fsync + rename + dir
/// fsync). Shared by checkpoints and the bench cache.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp_path = Path::new(&tmp);
    {
        let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(tmp_path)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(tmp_path, path)?;
    // Persist the rename itself. Some platforms refuse to open a
    // directory for writing; a failed dir-open is not a torn file, so
    // it is not treated as fatal.
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok(())
}

/// A parsed, fully CRC-verified checkpoint.
pub struct Checkpoint {
    version: u32,
    sections: BTreeMap<String, Vec<u8>>,
}

impl Checkpoint {
    /// Read and verify a checkpoint file.
    pub fn read(path: &Path) -> Result<Self, StoreError> {
        let bytes = fs::read(path)?;
        Self::from_bytes(&bytes)
    }

    /// Parse and verify a checkpoint from memory. Magic, version,
    /// header CRC, and every payload CRC are all checked here; a
    /// returned `Checkpoint` is known-good.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let mut dec = Decoder::new(bytes);
        let magic = dec.take_raw(4, "checkpoint magic")?;
        if magic != MAGIC {
            return Err(StoreError::BadMagic { found: [magic[0], magic[1], magic[2], magic[3]] });
        }
        let version = dec.take_u32("checkpoint version")?;
        if version > FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let count = dec.take_u32("section count")? as usize;
        let mut table = Vec::with_capacity(count);
        for _ in 0..count {
            let name = dec.take_str("section name")?;
            let len = dec.take_usize("section length")?;
            let crc = dec.take_u32("section crc")?;
            table.push((name, len, crc));
        }
        let header_len = bytes.len() - dec.remaining();
        let stored_header_crc = dec.take_u32("header crc")?;
        let actual_header_crc = crc32(&bytes[..header_len]);
        if stored_header_crc != actual_header_crc {
            return Err(StoreError::CorruptSection {
                section: "header".to_string(),
                expected: stored_header_crc,
                actual: actual_header_crc,
            });
        }

        let mut sections = BTreeMap::new();
        for (name, len, expected_crc) in table {
            let payload = dec.take_raw(len, "section payload")?.to_vec();
            let actual_crc = crc32(&payload);
            if actual_crc != expected_crc {
                return Err(StoreError::CorruptSection {
                    section: name,
                    expected: expected_crc,
                    actual: actual_crc,
                });
            }
            sections.entry(name).or_insert(payload);
        }
        dec.finish("checkpoint trailing bytes")?;
        Ok(Self { version, sections })
    }

    /// Format version recorded in the file.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Section names present, in lexicographic order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.keys().map(String::as_str)
    }

    /// Payload of `name`, if present.
    pub fn section(&self, name: &str) -> Option<&[u8]> {
        self.sections.get(name).map(Vec::as_slice)
    }

    /// Payload of `name`, or [`StoreError::MissingSection`].
    pub fn require(&self, name: &'static str) -> Result<&[u8], StoreError> {
        self.section(name).ok_or(StoreError::MissingSection { section: name })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointBuilder {
        let mut b = CheckpointBuilder::new();
        b.section("alpha", vec![1, 2, 3, 4]);
        b.section("beta", b"payload-two".to_vec());
        b.section("empty", Vec::new());
        b
    }

    #[test]
    fn roundtrip_in_memory() {
        let bytes = sample().to_bytes();
        let ckpt = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(ckpt.version(), FORMAT_VERSION);
        assert_eq!(ckpt.section("alpha").unwrap(), &[1, 2, 3, 4]);
        assert_eq!(ckpt.section("beta").unwrap(), b"payload-two");
        assert_eq!(ckpt.section("empty").unwrap(), b"");
        assert!(ckpt.section("missing").is_none());
        assert!(matches!(
            ckpt.require("gamma"),
            Err(StoreError::MissingSection { section: "gamma" })
        ));
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample().to_bytes(), sample().to_bytes());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(Checkpoint::from_bytes(&bytes), Err(StoreError::BadMagic { .. })));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(StoreError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn every_payload_bit_flip_is_caught() {
        let clean = sample().to_bytes();
        // Flip one bit at a time across the whole file; every mutation
        // must be rejected (magic, version, header crc, or payload crc).
        for i in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x10;
            assert!(
                Checkpoint::from_bytes(&bytes).is_err(),
                "bit flip at byte {i} was not detected"
            );
        }
    }

    #[test]
    fn truncation_is_caught_at_every_length() {
        let clean = sample().to_bytes();
        for n in 0..clean.len() {
            assert!(
                Checkpoint::from_bytes(&clean[..n]).is_err(),
                "truncation to {n} bytes was not detected"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0u8);
        assert!(Checkpoint::from_bytes(&bytes).is_err());
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join(format!(
            "odin-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join("ckpt.odst");
        sample().write_atomic(&path).unwrap();
        let ckpt = Checkpoint::read(&path).unwrap();
        assert_eq!(ckpt.section("alpha").unwrap(), &[1, 2, 3, 4]);
        // Overwrite in place: readers must never see a torn file.
        let mut b2 = CheckpointBuilder::new();
        b2.section("alpha", vec![9, 9]);
        b2.write_atomic(&path).unwrap();
        let ckpt2 = Checkpoint::read(&path).unwrap();
        assert_eq!(ckpt2.section("alpha").unwrap(), &[9, 9]);
        fs::remove_dir_all(&dir).ok();
    }
}

//! # odin-store
//!
//! Crash-safe persistence for the ODIN pipeline: a versioned,
//! checksummed binary checkpoint format and an append-only write-ahead
//! log for drift events.
//!
//! The paper's recovery story (§4–§5) assumes the system keeps its
//! learned state — encoder weights, cluster Δ-bands, the specialized
//! model registry. This crate is the substrate that lets a process
//! restart *without* re-learning any of it:
//!
//! * [`checkpoint`] — a sectioned snapshot container
//!   (`magic + version + section table + per-section CRC`), written
//!   atomically (tmp file + fsync + rename) so a crash mid-write never
//!   destroys the previous snapshot,
//! * [`wal`] — an append-only record log with per-record CRCs and a
//!   torn-tail-tolerant reader, so events newer than the last snapshot
//!   survive a crash,
//! * [`codec`] — the little-endian binary encoder/decoder and the
//!   [`Persist`] trait the higher crates implement for their state,
//! * [`crc`] — the CRC-32 (IEEE) used by both containers.
//!
//! The crate is intentionally dependency-free and knows nothing about
//! tensors, clusters, or detectors: higher layers (`odin-drift`,
//! `odin-core`, `odin-bench`) encode their own state through
//! [`codec::Encoder`] and store the bytes in named sections.
//!
//! Corruption is a *value*, not a panic: every reader returns
//! [`StoreError`] so callers can fall back to a cold bootstrap with a
//! logged reason.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod crc;
pub mod error;
pub mod wal;

pub use checkpoint::{Checkpoint, CheckpointBuilder, FORMAT_VERSION, MAGIC};
pub use codec::{Decoder, Encoder, Persist};
pub use crc::crc32;
pub use error::StoreError;
pub use wal::{read_wal, WalReader, WalRecord, WalWriter};

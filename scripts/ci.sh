#!/usr/bin/env bash
# Repo CI gate: formatting, lints, release build (with examples), tests.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace --examples"
cargo build --release --workspace --examples

echo "==> cargo test -q"
cargo test -q

# The tensor backend must be bit-identical at any thread count; run the
# suite once more with a 2-thread worker pool to catch regressions that
# only show up when kernels actually fan out.
echo "==> ODIN_THREADS=2 cargo test -q"
ODIN_THREADS=2 cargo test -q

echo "CI OK"

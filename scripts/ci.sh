#!/usr/bin/env bash
# Repo CI gate: formatting, lints, release build (with examples), tests.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace --examples"
cargo build --release --workspace --examples

echo "==> cargo test -q"
cargo test -q

echo "CI OK"

#!/usr/bin/env bash
# Repo CI gate: formatting, lints, release build (with examples), tests.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

# Diagnostics in the pipeline crates must flow through the telemetry
# event log (leveled, sink-routable, test-capturable), not raw stderr.
# odin-telemetry's StderrSink is the one place allowed to eprintln.
echo "==> eprintln gate (crates/core, crates/store)"
if grep -rn 'eprintln!' crates/core/src crates/store/src; then
    echo "error: eprintln! in pipeline crates; use Telemetry::event / an EventSink" >&2
    exit 1
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace --bins --examples"
# --bins matters: the smokes below invoke target/release/odin by path,
# which a bare --examples build never produces on a cold target dir.
cargo build --release --workspace --bins --examples

echo "==> cargo test -q"
cargo test -q

# The tensor backend must be bit-identical at any thread count; run the
# suite once more with a 2-thread worker pool to catch regressions that
# only show up when kernels actually fan out.
echo "==> ODIN_THREADS=2 cargo test -q"
ODIN_THREADS=2 cargo test -q

# ...and bit-identical across SIMD dispatch: run the kernel-owning
# crates once more with the AVX2 path disabled, so the scalar fallbacks
# (the semantics reference) stay green on their own.
echo "==> ODIN_NO_SIMD=1 cargo test -q -p odin-tensor -p odin-detect"
ODIN_NO_SIMD=1 cargo test -q -p odin-tensor -p odin-detect

# Crash-recovery smoke: write a checkpoint with a 2-thread tensor
# backend, truncate / bit-flip it, and require that (a) the corruption
# is reported through the CRC/version checks and (b) a cold bootstrap
# still comes up clean. The warm_restart example then drives the full
# checkpoint -> crash -> restore -> bit-identical-serving path in a
# real process.
echo "==> crash-recovery smoke (ODIN_THREADS=2)"
ODIN_THREADS=2 cargo test -q -p odin-core --test checkpoint -- \
    truncated_checkpoint_falls_back_to_cold_bootstrap bit_flip_is_detected
ODIN_THREADS=2 cargo run --release -p odin-core --example warm_restart >/dev/null

# Telemetry + exposition smoke: the stage-latency table must run
# end-to-end (store enabled, drift recovered, metrics and Chrome trace
# dumped) without a single store error, while serving /metrics,
# /healthz, and /trace on a loopback ephemeral port that we scrape with
# curl and validate with jq.
echo "==> telemetry + exposition smoke (table_telemetry --scale 0.05)"
SMOKE_DIR=/tmp/odin-ci-telemetry
rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR"
ODIN_SERVE_MS=15000 cargo run --release -p odin-bench --bin table_telemetry -- \
    --scale 0.05 --out "$SMOKE_DIR" >"$SMOKE_DIR/run.log" &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 150); do
    ADDR=$(sed -n 's|^serving telemetry at http://\([0-9.:]*\) .*|\1|p' "$SMOKE_DIR/run.log")
    [ -n "$ADDR" ] && break
    sleep 0.2
done
if [ -z "$ADDR" ]; then
    echo "error: telemetry server never came up" >&2
    cat "$SMOKE_DIR/run.log" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
# grep -c (not -q): -q exits at the first match, racing curl's
# remaining writes (EPIPE -> curl exit 23 under pipefail); -c drains
# the whole stream and still fails when there is no match.
curl -fsS "http://$ADDR/metrics" | grep -c '^odin_frames_total' >/dev/null
curl -fsS "http://$ADDR/healthz" | jq -e '.status == "ok"' >/dev/null
curl -fsS "http://$ADDR/trace" | jq -e '.traceEvents | length > 0' >/dev/null
wait "$SERVE_PID"
grep -q "store errors: 0" "$SMOKE_DIR/run.log"
jq -e '.traceEvents | length > 0' "$SMOKE_DIR/table_telemetry_trace.json" >/dev/null

# Multi-stream serving smoke: bring up the 4-stream OdinServer example
# with the per-shard event log enabled, let its client threads feed all
# four streams concurrently through the real HTTP ingest route, and
# scrape the merged exposition: /healthz must be live with 4 streams,
# and /metrics must carry per-stream labeled serving gauges/counters
# for every shard. The live-observability verbs then run against the
# same window: `odin tail` must stream the detect -> install arc with
# per-stream monotonic seqs, `tail -f` must follow, `top --once` must
# render and exit zero, and `flight` must pull a non-empty Chrome trace.
echo "==> multi-stream serving smoke (multistream_server example)"
ODIN_BIN=target/release/odin
MS_DIR=/tmp/odin-ci-multistream
rm -rf "$MS_DIR"
mkdir -p "$MS_DIR"
ODIN_SERVE_MS=15000 ODIN_STORE_DIR="$MS_DIR/store" \
    cargo run --release -p odin-core --example multistream_server \
    >"$MS_DIR/run.log" &
MS_PID=$!
MS_ADDR=""
for _ in $(seq 1 150); do
    MS_ADDR=$(sed -n 's|^serving multistream at http://\([0-9.:]*\) .*|\1|p' "$MS_DIR/run.log")
    [ -n "$MS_ADDR" ] && break
    sleep 0.2
done
if [ -z "$MS_ADDR" ]; then
    echo "error: multistream server never came up" >&2
    cat "$MS_DIR/run.log" >&2
    kill "$MS_PID" 2>/dev/null || true
    exit 1
fi
# Wait for the in-process HTTP clients to finish feeding the streams.
for _ in $(seq 1 150); do
    grep -q '^http ingest: ' "$MS_DIR/run.log" && break
    sleep 0.2
done
grep -q '^http ingest: 40 frames accepted across 4 streams' "$MS_DIR/run.log"
curl -fsS "http://$MS_ADDR/healthz" | jq -e '.status == "ok" and .streams == 4' >/dev/null
# grep -c (not -q) for the same SIGPIPE reason as above: -q bails at
# the first match and the echo side of the pipe dies with 141 once the
# exposition outgrows the pipe buffer.
MS_METRICS=$(curl -fsS "http://$MS_ADDR/metrics")
for s in 0 1 2 3; do
    echo "$MS_METRICS" | grep -c "^odin_server_queue_depth{stream=\"$s\"}" >/dev/null
    echo "$MS_METRICS" | grep -c "^odin_server_admitted_total{stream=\"$s\"} 50$" >/dev/null
    echo "$MS_METRICS" | grep -c "^odin_frames_total{stream=\"$s\"}" >/dev/null
    echo "$MS_METRICS" | grep -c "^odin_serve_precision{stream=\"$s\"}" >/dev/null
done
curl -fsS "http://$MS_ADDR/trace" | jq -e '.traceEvents | length > 0' >/dev/null
# `odin tail` over GET /events: the one-shot drain must carry the full
# recovery arc (drift detected and model installed on every stream) and
# per-stream seqs must be strictly monotonic — no dropped or torn
# records across the cursor pages.
"$ODIN_BIN" tail --addr "$MS_ADDR" --json --limit 4096 >"$MS_DIR/tail.json"
jq -s -e '[.[].kind] | (contains(["drift_detected"]) and contains(["model_installed"]))' \
    "$MS_DIR/tail.json" >/dev/null
jq -s -e 'group_by(.stream) | length == 4 and all(.[];
    ([.[].seq] as $s | $s == ($s|sort) and ($s|length == ($s|unique|length))))' \
    "$MS_DIR/tail.json" >/dev/null
# Follow mode long-polls the same route; a bounded window must replay
# the backlog and exit cleanly.
"$ODIN_BIN" tail -f --for 1500ms --addr "$MS_ADDR" --json >"$MS_DIR/tail_follow.json"
jq -s -e 'length > 0' "$MS_DIR/tail_follow.json" >/dev/null
"$ODIN_BIN" top --addr "$MS_ADDR" --once >"$MS_DIR/top.log"
grep -q 'status: ok' "$MS_DIR/top.log"
"$ODIN_BIN" flight --addr "$MS_ADDR" --out "$MS_DIR/flight.json" >/dev/null
jq -e '.traceEvents | length > 0' "$MS_DIR/flight.json" >/dev/null
wait "$MS_PID"

# Event-log + ops-CLI smoke: run a drift stream with the log enabled at
# two tensor thread counts and require byte-identical events.odlg (the
# log inherits replay determinism), then drive the `odin` CLI over the
# written store: `scan` must find the drift records with predicate
# filters and report zone-map pruning, `explain` must reconstruct the
# detect -> queued -> installed arc, and `status` must answer against a
# live exposition endpoint. A small log_throughput run keeps the bench
# bin itself green.
echo "==> event log + odin CLI smoke (event_log example, both thread counts)"
EL_DIR=/tmp/odin-ci-eventlog
rm -rf "$EL_DIR"
mkdir -p "$EL_DIR"
ODIN_THREADS=1 ODIN_STORE_DIR="$EL_DIR/t1" \
    cargo run --release -p odin-core --example event_log >"$EL_DIR/t1.log"
ODIN_THREADS=2 ODIN_STORE_DIR="$EL_DIR/t2" \
    cargo run --release -p odin-core --example event_log >"$EL_DIR/t2.log"
grep -q '^drift detected: ' "$EL_DIR/t1.log"
grep -q '^model installed: ' "$EL_DIR/t1.log"
cmp "$EL_DIR/t1/events.odlg" "$EL_DIR/t2/events.odlg"
"$ODIN_BIN" scan --log "$EL_DIR/t1/events.odlg" --kind drift --stats \
    >"$EL_DIR/scan.log" 2>"$EL_DIR/scan.stats"
grep -q 'drift_detected' "$EL_DIR/scan.log"
grep -q 'pruned by zone maps' "$EL_DIR/scan.stats"
"$ODIN_BIN" scan --log "$EL_DIR/t1/events.odlg" --since 60ms --served teacher --json \
    | jq -e '(length > 0) and all(.[]; .served == "teacher" and .ts_us >= 60000)' >/dev/null
"$ODIN_BIN" explain --log "$EL_DIR/t1/events.odlg" >"$EL_DIR/explain.log"
grep -q 'drift detected' "$EL_DIR/explain.log"
grep -q 'train queued' "$EL_DIR/explain.log"
grep -q 'model installed' "$EL_DIR/explain.log"
# `odin status` against the telemetry exposition window.
ODIN_SERVE_MS=15000 cargo run --release -p odin-bench --bin table_telemetry -- \
    --scale 0.05 --out "$EL_DIR" >"$EL_DIR/serve.log" &
EL_PID=$!
EL_ADDR=""
for _ in $(seq 1 150); do
    EL_ADDR=$(sed -n 's|^serving telemetry at http://\([0-9.:]*\) .*|\1|p' "$EL_DIR/serve.log")
    [ -n "$EL_ADDR" ] && break
    sleep 0.2
done
if [ -z "$EL_ADDR" ]; then
    echo "error: exposition endpoint for odin status never came up" >&2
    cat "$EL_DIR/serve.log" >&2
    kill "$EL_PID" 2>/dev/null || true
    exit 1
fi
"$ODIN_BIN" status --addr "$EL_ADDR" >"$EL_DIR/status.log"
grep -q '"status":"ok"' "$EL_DIR/status.log"
grep -q '^odin_frames_total' "$EL_DIR/status.log"
wait "$EL_PID"
cargo run --release -p odin-bench --bin log_throughput -- \
    --scale 0.1 --out /tmp/odin-ci-bench >/dev/null

# Model-attic smoke: a recurring night/day stream under a 1-cluster cap
# must archive evicted models and reinstall them on regime return, at
# both tensor thread counts with byte-identical event logs. The `odin`
# CLI must surface the new arc: `scan --kind attic_hit` finds the
# reinstall records, `explain` shows the attic stage inside the arc.
echo "==> model attic smoke (attic_reinstall example, both thread counts)"
AT_DIR=/tmp/odin-ci-attic
rm -rf "$AT_DIR"
mkdir -p "$AT_DIR"
ODIN_THREADS=1 ODIN_STORE_DIR="$AT_DIR/t1" \
    cargo run --release -p odin-core --example attic_reinstall >"$AT_DIR/t1.log"
ODIN_THREADS=2 ODIN_STORE_DIR="$AT_DIR/t2" \
    cargo run --release -p odin-core --example attic_reinstall >"$AT_DIR/t2.log"
grep -q '^attic hit: ' "$AT_DIR/t1.log"
cmp "$AT_DIR/t1/events.odlg" "$AT_DIR/t2/events.odlg"
"$ODIN_BIN" scan --log "$AT_DIR/t1/events.odlg" --kind attic_hit >"$AT_DIR/scan.log"
grep -q 'attic_hit' "$AT_DIR/scan.log"
# File-mode tail over the same log: the kind filter must page through
# to the reinstall records even when whole pages are filtered out.
"$ODIN_BIN" tail --log "$AT_DIR/t1/events.odlg" --kind attic --json >"$AT_DIR/tail.json"
jq -s -e '(length > 0) and all(.[]; .kind == "attic_hit")' "$AT_DIR/tail.json" >/dev/null
"$ODIN_BIN" explain --log "$AT_DIR/t1/events.odlg" >"$AT_DIR/explain.log"
grep -q 'attic reinstall' "$AT_DIR/explain.log"

# Multi-stream scaling gate: re-measure the sharded-serving table at
# reduced scale (open-loop rates make the FPS columns scale-invariant)
# and require (a) aggregate FPS within 30% of the committed baseline
# per row and (b) the headline scaling property — 4 concurrent streams
# deliver at least 1.5x the aggregate FPS of 1 stream at 4 tensor
# threads (the committed table shows 4x; 1.5x absorbs CI noise).
echo "==> bench gate (table_multistream vs results/table_multistream.json)"
cargo run --release -p odin-bench --bin table_multistream -- \
    --scale 0.3 --out /tmp/odin-ci-bench >/dev/null
cp /tmp/odin-ci-bench/table_multistream.json results/BENCH_table_multistream.json
cargo run --release -p odin-bench --bin bench_gate -- \
    --baseline results/table_multistream.json \
    --candidate results/BENCH_table_multistream.json \
    --column 2 --max-drop-pct 30
jq -e '
  (.rows[] | select(.[0] == "1s/4t") | .[2] | tonumber) as $one
  | (.rows[] | select(.[0] == "4s/4t") | .[2] | tonumber) as $four
  | ($four / $one) >= 1.5
' results/BENCH_table_multistream.json >/dev/null || {
    echo "error: 4-stream aggregate FPS did not scale >= 1.5x over 1 stream" >&2
    exit 1
}

# Benchmark regression gate: re-measure table 4 and require throughput
# within 15% of the committed baseline (results/table4.json). The fresh
# run is recorded as results/BENCH_table4.json for inspection. The run
# itself asserts (and prints) the install-time int8 mAP gate; the grep
# makes the PASS line a CI artifact.
echo "==> bench gate (table4 throughput vs results/table4.json)"
cargo run --release -p odin-bench --bin table4_throughput_memory -- \
    --out /tmp/odin-ci-bench >/tmp/odin-ci-bench/table4.log
grep 'int8 mAP gate' /tmp/odin-ci-bench/table4.log
grep -q 'int8 mAP gate.*PASS' /tmp/odin-ci-bench/table4.log
cp /tmp/odin-ci-bench/table4.json results/BENCH_table4.json
cargo run --release -p odin-bench --bin bench_gate -- \
    --baseline results/table4.json --candidate results/BENCH_table4.json \
    --column 2 --max-drop-pct 15

# ServePrecision headline gate: the int8 serving path must deliver at
# least 2x the frozen pre-SIMD scalar-f32 throughput for the
# specialized/lite detectors. results/table4_pre_simd.json is never
# overwritten by CI, and the negative drop budget inverts the gate into
# a required improvement (drop <= -100% == candidate >= 2x baseline).
echo "==> bench gate (int8 >= 2x pre-SIMD f32, results/table4_pre_simd.json)"
cargo run --release -p odin-bench --bin bench_gate -- \
    --baseline results/table4_pre_simd.json --candidate results/BENCH_table4.json \
    --column 2 --max-drop-pct -100 \
    --rows YOLO-SPECIALIZED-INT8,YOLO-LITE-INT8

# Attic headline gate: on the recurring-drift schedule, the median
# recovery with the attic on (signature match + reinstall) must be at
# least 10x faster than a full retrain. bench_gate compares same-labeled
# rows across two files, so the fresh run's retrain row is relabeled as
# the attic row to serve as the baseline: the negative drop budget
# (-900% == candidate >= 10x baseline) then gates the rec/s ratio
# between the two rows of the same run — self-calibrating across boxes.
echo "==> bench gate (table8 recurring: attic reinstall >= 10x retrain)"
cargo run --release -p odin-bench --bin table8_recovery_latency -- \
    --scale 0.3 --out /tmp/odin-ci-bench >/tmp/odin-ci-bench/table8.log
grep -q 'attic shape check' /tmp/odin-ci-bench/table8.log
cp /tmp/odin-ci-bench/table8_recurring.json results/BENCH_table8_recurring.json
jq '.rows = [ .rows[] | select(.[0] == "Recurring-retrain") | .[0] = "Recurring-attic" ]' \
    results/BENCH_table8_recurring.json >/tmp/odin-ci-bench/table8_retrain_as_baseline.json
cargo run --release -p odin-bench --bin bench_gate -- \
    --baseline /tmp/odin-ci-bench/table8_retrain_as_baseline.json \
    --candidate results/BENCH_table8_recurring.json \
    --column 4 --max-drop-pct -900 --rows Recurring-attic

# Kernel-level regression gate: re-measure the tensor micro-benchmarks
# and require GFLOP/s within 40% of the committed baseline
# (results/tensor_gflops.json) for the numeric rows — the wide budget
# absorbs thermal noise on small CI boxes; --rows skips the
# latency-only rows whose GFLOP/s cell is "-".
echo "==> bench gate (tensor_gflops vs results/tensor_gflops.json)"
cargo run --release -p odin-bench --bin tensor_gflops -- \
    --out /tmp/odin-ci-bench >/dev/null
cp /tmp/odin-ci-bench/tensor_gflops.json results/BENCH_tensor_gflops.json
cargo run --release -p odin-bench --bin bench_gate -- \
    --baseline results/tensor_gflops.json --candidate results/BENCH_tensor_gflops.json \
    --column 2 --max-drop-pct 40 \
    --rows matmul,matmul_nt,matmul_tn,matmul_scalar,matmul_nt_scalar,matmul_tn_scalar,conv2d_fwd,conv2d_fwd_bwd,conv2d_int8,dot_i8

echo "CI OK"

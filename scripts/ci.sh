#!/usr/bin/env bash
# Repo CI gate: formatting, lints, release build (with examples), tests.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

# Diagnostics in the pipeline crates must flow through the telemetry
# event log (leveled, sink-routable, test-capturable), not raw stderr.
# odin-telemetry's StderrSink is the one place allowed to eprintln.
echo "==> eprintln gate (crates/core, crates/store)"
if grep -rn 'eprintln!' crates/core/src crates/store/src; then
    echo "error: eprintln! in pipeline crates; use Telemetry::event / an EventSink" >&2
    exit 1
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace --examples"
cargo build --release --workspace --examples

echo "==> cargo test -q"
cargo test -q

# The tensor backend must be bit-identical at any thread count; run the
# suite once more with a 2-thread worker pool to catch regressions that
# only show up when kernels actually fan out.
echo "==> ODIN_THREADS=2 cargo test -q"
ODIN_THREADS=2 cargo test -q

# Crash-recovery smoke: write a checkpoint with a 2-thread tensor
# backend, truncate / bit-flip it, and require that (a) the corruption
# is reported through the CRC/version checks and (b) a cold bootstrap
# still comes up clean. The warm_restart example then drives the full
# checkpoint -> crash -> restore -> bit-identical-serving path in a
# real process.
echo "==> crash-recovery smoke (ODIN_THREADS=2)"
ODIN_THREADS=2 cargo test -q -p odin-core --test checkpoint -- \
    truncated_checkpoint_falls_back_to_cold_bootstrap bit_flip_is_detected
ODIN_THREADS=2 cargo run --release -p odin-core --example warm_restart >/dev/null

# Telemetry smoke: the stage-latency table must run end-to-end (store
# enabled, drift recovered, metrics dumped) without a single store error.
echo "==> telemetry smoke (table_telemetry --scale 0.05)"
cargo run --release -p odin-bench --bin table_telemetry -- --scale 0.05 \
    --out /tmp/odin-ci-telemetry | grep "store errors: 0"

echo "CI OK"

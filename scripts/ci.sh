#!/usr/bin/env bash
# Repo CI gate: formatting, lints, release build (with examples), tests.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

# Diagnostics in the pipeline crates must flow through the telemetry
# event log (leveled, sink-routable, test-capturable), not raw stderr.
# odin-telemetry's StderrSink is the one place allowed to eprintln.
echo "==> eprintln gate (crates/core, crates/store)"
if grep -rn 'eprintln!' crates/core/src crates/store/src; then
    echo "error: eprintln! in pipeline crates; use Telemetry::event / an EventSink" >&2
    exit 1
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace --examples"
cargo build --release --workspace --examples

echo "==> cargo test -q"
cargo test -q

# The tensor backend must be bit-identical at any thread count; run the
# suite once more with a 2-thread worker pool to catch regressions that
# only show up when kernels actually fan out.
echo "==> ODIN_THREADS=2 cargo test -q"
ODIN_THREADS=2 cargo test -q

# Crash-recovery smoke: write a checkpoint with a 2-thread tensor
# backend, truncate / bit-flip it, and require that (a) the corruption
# is reported through the CRC/version checks and (b) a cold bootstrap
# still comes up clean. The warm_restart example then drives the full
# checkpoint -> crash -> restore -> bit-identical-serving path in a
# real process.
echo "==> crash-recovery smoke (ODIN_THREADS=2)"
ODIN_THREADS=2 cargo test -q -p odin-core --test checkpoint -- \
    truncated_checkpoint_falls_back_to_cold_bootstrap bit_flip_is_detected
ODIN_THREADS=2 cargo run --release -p odin-core --example warm_restart >/dev/null

# Telemetry + exposition smoke: the stage-latency table must run
# end-to-end (store enabled, drift recovered, metrics and Chrome trace
# dumped) without a single store error, while serving /metrics,
# /healthz, and /trace on a loopback ephemeral port that we scrape with
# curl and validate with jq.
echo "==> telemetry + exposition smoke (table_telemetry --scale 0.05)"
SMOKE_DIR=/tmp/odin-ci-telemetry
rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR"
ODIN_SERVE_MS=15000 cargo run --release -p odin-bench --bin table_telemetry -- \
    --scale 0.05 --out "$SMOKE_DIR" >"$SMOKE_DIR/run.log" &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 150); do
    ADDR=$(sed -n 's|^serving telemetry at http://\([0-9.:]*\) .*|\1|p' "$SMOKE_DIR/run.log")
    [ -n "$ADDR" ] && break
    sleep 0.2
done
if [ -z "$ADDR" ]; then
    echo "error: telemetry server never came up" >&2
    cat "$SMOKE_DIR/run.log" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
curl -fsS "http://$ADDR/metrics" | grep -q '^odin_frames_total'
curl -fsS "http://$ADDR/healthz" | jq -e '.status == "ok"' >/dev/null
curl -fsS "http://$ADDR/trace" | jq -e '.traceEvents | length > 0' >/dev/null
wait "$SERVE_PID"
grep -q "store errors: 0" "$SMOKE_DIR/run.log"
jq -e '.traceEvents | length > 0' "$SMOKE_DIR/table_telemetry_trace.json" >/dev/null

# Benchmark regression gate: re-measure table 4 and require throughput
# within 15% of the committed baseline (results/table4.json). The fresh
# run is recorded as results/BENCH_table4.json for inspection.
echo "==> bench gate (table4 throughput vs results/table4.json)"
cargo run --release -p odin-bench --bin table4_throughput_memory -- \
    --out /tmp/odin-ci-bench >/dev/null
cp /tmp/odin-ci-bench/table4.json results/BENCH_table4.json
cargo run --release -p odin-bench --bin bench_gate -- \
    --baseline results/table4.json --candidate results/BENCH_table4.json \
    --column 2 --max-drop-pct 15

echo "CI OK"

#!/usr/bin/env bash
# Regenerates every table and figure of the paper.
#
#   scripts/run_all_experiments.sh [SCALE] [SEED]
#
# SCALE multiplies dataset sizes / training iterations (default 1.0;
# EXPERIMENTS.md records the scale its reference numbers used). Tables are
# printed and saved as JSON under results/.
set -euo pipefail
SCALE="${1:-1.0}"
SEED="${2:-42}"
cd "$(dirname "$0")/.."

cargo build --release -p odin-bench

run() {
    echo
    echo "############ $1 (scale $SCALE, seed $SEED) ############"
    cargo run -q --release -p odin-bench --bin "$1" -- --scale "$SCALE" --seed "$SEED"
}

# Cheap diagnostics first, heavyweight streaming experiments last.
run fig4_delta_band
run fig5_projection_failure
run table4_throughput_memory
run fig2_latent_spaces
run fig1_motivating
run fig8_specialization
run table3_cross_subset
run table1_drift_detection
run table2_cluster_distribution
run table5_selection
run table6_aggregation
run table7_ablation
run fig9_end_to_end
run ablation_sweeps

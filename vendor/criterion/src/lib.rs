//! Vendored subset of `criterion`.
//!
//! Keeps `benches/*.rs` compiling and running offline. Instead of
//! criterion's statistical machinery this harness warms up briefly,
//! times `sample_size` samples of each benchmark closure, and prints
//! median / mean / min per-iteration wall-clock times.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How [`Bencher::iter_batched`] sizes its batches. This stub runs one
/// input per measurement regardless of the hint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Benchmark driver: configuration plus result reporting.
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30, warmup: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b =
            Bencher { samples: Vec::new(), warmup: self.warmup, sample_size: self.sample_size };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Passed to each benchmark closure; collects per-iteration timings.
pub struct Bencher {
    samples: Vec<f64>,
    warmup: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` (called once per iteration).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up and estimate a per-iteration cost so each sample can
        // batch enough iterations to dwarf timer overhead.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Aim for ~2ms per sample, clamped to [1, 10_000] iterations.
        let iters = ((0.002 / per_iter.max(1e-9)) as u64).clamp(1, 10_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            let input = setup();
            black_box(routine(input));
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }

        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed().as_secs_f64());
        }
    }

    fn report(&mut self, id: &str) {
        assert!(!self.samples.is_empty(), "benchmark {id:?} recorded no samples");
        self.samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        println!(
            "{id:<44} median {:>12}  mean {:>12}  min {:>12}  ({} samples)",
            fmt_time(median),
            fmt_time(mean),
            fmt_time(min),
            self.samples.len()
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a benchmark group function (criterion-compatible forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop/add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        c.bench_function("noop/batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    criterion_group! {
        name = group;
        config = Criterion::default().sample_size(5).warm_up_time(Duration::from_millis(5));
        targets = sample_bench
    }

    #[test]
    fn harness_runs() {
        group();
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
        assert_eq!(fmt_time(3.0e-5), "30.00 µs");
        assert_eq!(fmt_time(4.0e-3), "4.00 ms");
        assert_eq!(fmt_time(1.5), "1.500 s");
    }
}

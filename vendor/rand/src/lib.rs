//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`,
//! `gen_range`, and `gen_bool`.
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64 — a different
//! stream than upstream's ChaCha12, but the workspace only relies on
//! determinism-for-a-seed and statistical quality, not on exact values.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 as recommended by the xoshiro authors.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ generator standing in for upstream's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for v in &mut s {
                *v = splitmix64(&mut sm);
            }
            // All-zero state is the one degenerate case for xoshiro.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples a uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa-ish bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range form accepted by [`Rng::gen_range`].
///
/// Like upstream, this is implemented *generically* over the element
/// type (`Range<T> where T: SampleUniform`) rather than per concrete
/// type — the unique impl lets literal ranges (`0.82..1.12`) unify
/// with the surrounding expression's type instead of falling back to
/// `i32`/`f64`.
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Draws a uniform integer in `[0, span)` without modulo bias
/// (widening-multiply method).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // 2^64 mod span: low products below this threshold fall in a
    // partially-covered bucket and must be rejected.
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = (rng.next_u64() as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let unit: $t = Standard::sample(rng);
                lo + (hi - lo) * unit
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let unit: $t = Standard::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] (mirrors upstream `rand`).
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0usize..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f32 = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&d));
        }
    }
}

//! Vendored subset of `crossbeam`: the [`channel`] module with
//! unbounded MPMC channels.
//!
//! Implemented as `Mutex<VecDeque>` + `Condvar` — far from crossbeam's
//! lock-free internals, but API-compatible for the send/recv/try_recv
//! surface ODIN's training pool uses, and plenty fast for a handful of
//! worker threads.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the unsent message, like crossbeam's.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty (senders still connected).
        Empty,
        /// Channel is empty and all senders have been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel is empty and all senders have been dropped.
        Disconnected,
    }

    /// The sending half of an unbounded channel. Clone to share.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Clone to share
    /// (each message is delivered to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only if every receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(msg);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a message, blocking until one arrives or all
        /// senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = q.pop_front() {
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Dequeues a message, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn recv_unblocks_on_disconnect() {
            let (tx, rx) = unbounded::<i32>();
            let h = thread::spawn(move || rx.recv());
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn mpmc_each_message_delivered_once() {
            let (tx, rx) = unbounded();
            let n = 200;
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for i in 0..n {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            let mut all: Vec<i32> = workers.into_iter().flat_map(|h| h.join().unwrap()).collect();
            all.sort_unstable();
            assert_eq!(all, (0..n).collect::<Vec<_>>());
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            let err = rx.recv_timeout(Duration::from_millis(10));
            assert_eq!(err, Err(RecvTimeoutError::Timeout));
        }
    }
}

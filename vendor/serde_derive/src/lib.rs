//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! An empty token stream is a valid derive expansion; the annotated
//! types simply gain no impls, which is exactly what this offline
//! workspace needs (see the vendored `serde` crate).

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Vendored subset of `proptest`.
//!
//! Supports the surface this workspace uses: the [`proptest!`] macro
//! with `arg in strategy` bindings and an optional
//! `#![proptest_config(...)]`, numeric range strategies,
//! [`collection::vec`], tuple strategies, [`Strategy::prop_map`], and
//! the `prop_assert*`/`prop_assume` macros.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: each test function runs `cases` deterministic random samples
//! (fixed internal seed) and plain-asserts the property. Failures
//! therefore reproduce exactly on re-run.

use std::ops::{Range, RangeInclusive};

#[doc(hidden)]
pub use rand as __rand;
use rand::rngs::StdRng;
use rand::Rng;

/// Per-block configuration (subset: case count only).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; tests here train small nets
        // per case, so keep the default moderate.
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. `strategy.generate(rng)` yields one sample.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Collection strategies (subset: `vec`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for [`vec`]; built from a fixed `usize`,
    /// a `Range<usize>`, or a `RangeInclusive<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec size range is empty");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "vec size range is empty");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each sample has a length drawn from `size` and
    /// elements drawn independently from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]`-able function running `cases` random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        0x0DD1_7E57_CA5E_5EED,
                    );
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts two expressions differ for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Expands to `continue` targeting the per-test case loop.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in -1.0f32..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn prop_map_applies(n in (1usize..4, 2usize..5).prop_map(|(a, b)| a * b)) {
            prop_assert!((2..=12).contains(&n));
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }

    #[test]
    fn fixed_len_vec() {
        use crate::Strategy;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let s = crate::collection::vec(-2.0f32..2.0, 6);
        assert_eq!(s.generate(&mut rng).len(), 6);
    }
}

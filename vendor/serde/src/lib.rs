//! Vendored stand-in for `serde`.
//!
//! The workspace's serde derives are decorative — nothing serializes
//! through the serde data model (the one JSON writer in `odin-bench`
//! emits JSON by hand). This stub keeps the `#[derive(Serialize,
//! Deserialize)]` annotations compiling offline: the traits are empty
//! markers and the derive macros expand to nothing.

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// No-op derive for [`Serialize`] (expands to nothing).
pub use serde_derive::Serialize;

/// No-op derive for [`Deserialize`] (expands to nothing).
pub use serde_derive::Deserialize;

//! Vendored subset of `parking_lot`: [`Mutex`] and [`RwLock`] with the
//! non-poisoning API, implemented as thin wrappers over `std::sync`.
//!
//! A poisoned std lock means a panic happened while the guard was held;
//! parking_lot's semantics are to carry on, so these wrappers recover
//! the inner guard instead of propagating the poison error.

use std::sync::{self, TryLockError};

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A reader-writer lock that never poisons.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock around `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access through an exclusive borrow (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock that never poisons.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex around `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access through an exclusive borrow (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn rwlock_survives_panicking_writer() {
        let l = Arc::new(RwLock::new(0));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        assert_eq!(*l.read(), 0);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}

//! End-to-end system tests: ODIN versus the static baseline on drifting
//! streams — the Figure 1 / Figure 9 / Table 7 claims at test scale.

use odin_core::encoder::HistogramEncoder;
use odin_core::metrics::{mean_map, StreamEvaluator};
use odin_core::pipeline::{Odin, OdinConfig};
use odin_core::selector::SelectionPolicy;
use odin_core::specializer::SpecializerConfig;
use odin_data::{DriftSchedule, Frame, Phase, SceneGen, Subset};
use odin_detect::Detector;
use odin_drift::ManagerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_cfg() -> OdinConfig {
    OdinConfig {
        manager: ManagerConfig {
            min_points: 20,
            stable_window: 6,
            kl_eps: 2e-3,
            ..ManagerConfig::default()
        },
        specializer: SpecializerConfig {
            train_iters: 350,
            distill_iters: 250,
            batch_size: 8,
            ..SpecializerConfig::default()
        },
        min_train_frames: 40,
        ..OdinConfig::default()
    }
}

fn night_day_stream(total: usize, seed: u64) -> Vec<Frame> {
    let gen = SceneGen::new(48);
    let mut rng = StdRng::seed_from_u64(seed);
    DriftSchedule::new(
        total,
        vec![
            Phase { at_frame: 0, adds: Subset::Night },
            Phase { at_frame: total / 2, adds: Subset::Day },
        ],
    )
    .generate(&gen, &mut rng)
}

fn run(cfg: OdinConfig, stream: &[Frame], window: usize, seed: u64) -> (f32, usize, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let teacher = Detector::heavy(48, &mut rng);
    let mut odin = Odin::new(Box::new(HistogramEncoder::new()), teacher, cfg, seed);
    let mut eval = StreamEvaluator::new(window);
    for f in stream {
        let r = odin.process(f);
        eval.record(f, r.detections);
    }
    let clusters = odin.manager().clusters().len();
    let models = odin.model_count();
    (mean_map(&eval.finish()), clusters, models)
}

/// ODIN with recovery must beat the static (untrained-on-stream) baseline
/// on a drifting stream, and must actually discover multiple concepts.
#[test]
fn odin_beats_static_baseline_on_drifting_stream() {
    let stream = night_day_stream(360, 200);
    let (map_odin, clusters, models) = run(test_cfg(), &stream, 90, 1);
    let baseline_cfg = OdinConfig { baseline_only: true, ..test_cfg() };
    let (map_base, _, _) = run(baseline_cfg, &stream, 90, 1);
    assert!(clusters >= 2, "expected at least 2 clusters, got {clusters}");
    assert!(models >= 2, "expected at least 2 models, got {models}");
    assert!(map_odin > map_base, "ODIN mAP {map_odin} should beat the static baseline {map_base}");
}

/// Accuracy must improve after recovery: the post-recovery windows of
/// the stream should beat the pre-recovery windows (Figure 9's step-up).
#[test]
fn accuracy_steps_up_after_recovery() {
    let stream = night_day_stream(360, 201);
    let mut rng = StdRng::seed_from_u64(2);
    let teacher = Detector::heavy(48, &mut rng);
    let mut odin = Odin::new(Box::new(HistogramEncoder::new()), teacher, test_cfg(), 2);
    let mut eval = StreamEvaluator::new(60);
    let mut first_drift = None;
    for (i, f) in stream.iter().enumerate() {
        let r = odin.process(f);
        if r.drift.is_some() && first_drift.is_none() {
            first_drift = Some(i);
        }
        eval.record(f, r.detections);
    }
    let drift_at = first_drift.expect("no drift detected at all");
    let points = eval.finish();
    let pre: Vec<f32> = points.iter().filter(|p| p.at <= drift_at).map(|p| p.map).collect();
    let post: Vec<f32> = points.iter().filter(|p| p.at > drift_at + 60).map(|p| p.map).collect();
    assert!(!post.is_empty(), "no windows after recovery");
    let pre_mean = if pre.is_empty() { 0.0 } else { pre.iter().sum::<f32>() / pre.len() as f32 };
    let post_mean = post.iter().sum::<f32>() / post.len() as f32;
    assert!(post_mean > pre_mean, "no step-up after recovery: pre {pre_mean} vs post {post_mean}");
}

/// Table 7's ordering: the full system (Δ-BM selector) must not lose to
/// the −SELECTOR ablation (most-recent model), which must not lose badly
/// to the static baseline.
#[test]
fn ablation_ordering_holds() {
    let stream = night_day_stream(360, 202);
    let (map_full, _, _) = run(test_cfg(), &stream, 120, 3);
    let no_selector_cfg = OdinConfig { policy: SelectionPolicy::MostRecent, ..test_cfg() };
    let (map_nosel, _, _) = run(no_selector_cfg, &stream, 120, 3);
    assert!(
        map_full >= map_nosel - 0.02,
        "full system ({map_full}) should not lose to -SELECTOR ({map_nosel})"
    );
}

/// ODIN's deployed memory after recovery must be below the heavyweight
/// baseline's (Figure 1's memory bar).
#[test]
fn memory_footprint_shrinks() {
    let stream = night_day_stream(240, 203);
    let mut rng = StdRng::seed_from_u64(4);
    let teacher = Detector::heavy(48, &mut rng);
    let teacher_bytes = teacher.param_bytes();
    let mut odin = Odin::new(Box::new(HistogramEncoder::new()), teacher, test_cfg(), 4);
    for f in &stream {
        let _ = odin.process(f);
    }
    assert!(odin.model_count() > 0);
    assert!(
        odin.memory_bytes() < teacher_bytes,
        "deployed memory {} should be below the teacher's {}",
        odin.memory_bytes(),
        teacher_bytes
    );
}

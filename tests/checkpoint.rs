//! Crash-safe persistence of the whole pipeline: a checkpoint must
//! restore to a bit-identical system (same `ServedBy` decisions, same
//! detections, same `memory_bytes`), corruption must be rejected with a
//! clean cold-bootstrap fallback instead of a panic, and the drift-event
//! WAL must replay promotions/evictions/installs newer than the last
//! snapshot.

use std::path::PathBuf;

use odin_core::encoder::HistogramEncoder;
use odin_core::pipeline::{Odin, OdinConfig};
use odin_core::specializer::SpecializerConfig;
use odin_core::training::TrainingMode;
use odin_core::{AtticConfig, CheckpointPolicy, SNAPSHOT_FILE, WAL_FILE};
use odin_data::{Frame, RecurringSchedule, SceneGen, Subset};
use odin_detect::{Detection, Detector, DetectorArch};
use odin_drift::ManagerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_cfg(training: TrainingMode) -> OdinConfig {
    OdinConfig {
        manager: ManagerConfig {
            min_points: 12,
            stable_window: 4,
            kl_eps: 5e-3,
            hist_hi: 8.0,
            ..ManagerConfig::default()
        },
        specializer: SpecializerConfig {
            arch: DetectorArch::Small,
            frame_size: 48,
            train_iters: 30,
            distill_iters: 20,
            batch_size: 4,
        },
        min_train_frames: 20,
        training,
        ..OdinConfig::default()
    }
}

fn new_odin(training: TrainingMode) -> Odin {
    let mut rng = StdRng::seed_from_u64(0);
    let teacher = Detector::heavy(48, &mut rng);
    Odin::new(Box::new(HistogramEncoder::new()), teacher, quick_cfg(training), 42)
}

fn night_then_day(n_each: usize) -> (Vec<Frame>, Vec<Frame>) {
    let gen = SceneGen::new(48);
    let mut rng = StdRng::seed_from_u64(2);
    (
        gen.subset_frames(&mut rng, Subset::Night, n_each),
        gen.subset_frames(&mut rng, Subset::Day, n_each),
    )
}

/// Unique scratch path per test (the suite may run in parallel).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("odin-ckpt-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Bitwise fingerprint of a detection list.
fn fingerprint(dets: &[Detection]) -> Vec<(u32, usize, u32, u32, u32, u32)> {
    dets.iter()
        .map(|d| {
            (
                d.score.to_bits(),
                d.bbox.class.index(),
                d.bbox.x.to_bits(),
                d.bbox.y.to_bits(),
                d.bbox.w.to_bits(),
                d.bbox.h.to_bits(),
            )
        })
        .collect()
}

fn registry_params(odin: &Odin) -> Vec<(usize, Vec<f32>)> {
    let registry = odin.registry();
    let registry = registry.read();
    odin.model_ids()
        .into_iter()
        .map(|id| (id, registry.get(id).expect("registered").detector.export_params()))
        .collect()
}

/// The headline contract: checkpoint mid-stream, restore in a fresh
/// process stand-in, and the restored pipeline serves the rest of the
/// stream *bit-identically* — same `ServedBy` path, same detections,
/// same deployment footprint.
#[test]
fn checkpoint_restore_is_bit_identical_inline() {
    let path = scratch("roundtrip").join("snap.odst");
    let (night, day) = night_then_day(60);

    let mut original = new_odin(TrainingMode::Inline);
    original.process_stream(&night);
    assert!(original.model_count() > 0, "fixture trained no model before checkpoint");
    original.checkpoint(&path).expect("checkpoint");

    let mut restored = Odin::restore(&path).expect("restore");
    assert_eq!(restored.memory_bytes(), original.memory_bytes());
    assert_eq!(registry_params(&restored), registry_params(&original));
    assert_eq!(restored.manager().clusters().len(), original.manager().clusters().len());

    let before = original.stats();
    let after = restored.stats();
    assert_eq!(before.jobs_submitted, after.jobs_submitted);
    assert_eq!(before.models_installed, after.models_installed);

    // Serve the second concept on both instances.
    let res_orig = original.process_stream(&day);
    let res_rest = restored.process_stream(&day);
    for (a, b) in res_orig.iter().zip(&res_rest) {
        assert_eq!(a.served_by, b.served_by, "ServedBy diverged after restore");
        assert_eq!(a.assignment, b.assignment, "assignment diverged after restore");
        assert_eq!(
            fingerprint(&a.detections),
            fingerprint(&b.detections),
            "detections diverged after restore"
        );
    }
    assert_eq!(original.memory_bytes(), restored.memory_bytes());
    assert_eq!(registry_params(&original), registry_params(&restored));
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

/// A checkpoint taken while background jobs are queued/running retains
/// their inputs and seeds; the restored pipeline converges to the same
/// models as the uninterrupted run.
#[test]
fn background_checkpoint_converges_to_identical_models() {
    let path = scratch("background").join("snap.odst");
    let (night, day) = night_then_day(60);

    let mut original = new_odin(TrainingMode::Background { workers: 2 });
    original.process_stream(&night);
    original.checkpoint(&path).expect("checkpoint");

    let mut restored = Odin::restore(&path).expect("restore");
    original.process_stream(&day);
    restored.process_stream(&day);
    original.finish_training();
    restored.finish_training();

    assert!(original.model_count() > 0, "fixture trained no models");
    assert_eq!(registry_params(&original), registry_params(&restored));
    assert_eq!(original.memory_bytes(), restored.memory_bytes());
    let a = original.stats();
    let b = restored.stats();
    assert_eq!(a.models_installed, b.models_installed);
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

/// Truncation anywhere in the file is caught by the section CRCs (or
/// the header parse) and surfaces as an error — and `restore_or_else`
/// falls back to a cold bootstrap instead of panicking.
#[test]
fn truncated_checkpoint_falls_back_to_cold_bootstrap() {
    let path = scratch("truncate").join("snap.odst");
    let (night, _) = night_then_day(40);
    let mut odin = new_odin(TrainingMode::Inline);
    odin.process_stream(&night);
    odin.checkpoint(&path).expect("checkpoint");

    let bytes = std::fs::read(&path).expect("read snapshot");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate snapshot");
    assert!(Odin::restore(&path).is_err(), "truncated checkpoint must be rejected");

    let cold = Odin::restore_or_else(&path, || new_odin(TrainingMode::Inline));
    assert_eq!(cold.model_count(), 0, "fallback must be a cold bootstrap");
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

/// A single flipped bit in the payload is caught by a section CRC.
#[test]
fn bit_flip_is_detected() {
    let path = scratch("bitflip").join("snap.odst");
    let (night, _) = night_then_day(40);
    let mut odin = new_odin(TrainingMode::Inline);
    odin.process_stream(&night);
    odin.checkpoint(&path).expect("checkpoint");

    let mut bytes = std::fs::read(&path).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).expect("write corrupted snapshot");
    assert!(Odin::restore(&path).is_err(), "bit flip must be rejected");
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

/// Drift events, evictions, and installs that happen *after* the last
/// snapshot live in the WAL; `restore_from_dir` replays them so the
/// recovered system serves like the live one.
#[test]
fn wal_replay_recovers_post_snapshot_events() {
    let dir = scratch("wal-replay");
    let (night, day) = night_then_day(60);

    let mut live = new_odin(TrainingMode::Inline);
    live.enable_store(&dir, CheckpointPolicy::Manual).expect("enable store");
    // Snapshot the empty system, then learn everything afterwards: every
    // promotion and install must come back from the WAL alone.
    live.checkpoint(&dir.join(SNAPSHOT_FILE)).expect("snapshot");
    live.process_stream(&night);
    live.flush_store();
    assert!(live.model_count() > 0, "fixture trained no model");
    assert!(live.stats().wal_events_logged > 0, "no WAL events were logged");

    let mut recovered = Odin::restore_from_dir(&dir).expect("restore from dir");
    assert_eq!(
        recovered.manager().clusters().len(),
        live.manager().clusters().len(),
        "WAL replay missed promotions"
    );
    assert_eq!(registry_params(&recovered), registry_params(&live));
    assert_eq!(recovered.memory_bytes(), live.memory_bytes());
    // The recovered system must serve identically on fresh frames.
    for f in &day[..10] {
        assert_eq!(fingerprint(&live.infer_only(f)), fingerprint(&recovered.infer_only(f)));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `OnDrift` writes a snapshot at the frame boundary after each
/// promotion, through the background writer.
#[test]
fn on_drift_policy_snapshots_automatically() {
    let dir = scratch("on-drift");
    let (night, _) = night_then_day(60);
    let mut odin = new_odin(TrainingMode::Inline);
    odin.enable_store(&dir, CheckpointPolicy::OnDrift).expect("enable store");
    odin.process_stream(&night);
    odin.flush_store();
    assert!(odin.stats().snapshots_written > 0, "drift did not trigger a snapshot");
    assert_eq!(odin.store_write_failures(), 0);
    let restored = Odin::restore_from_dir(&dir).expect("restore from dir");
    assert!(!restored.manager().clusters().is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

/// `EveryNFrames` snapshots on a frame cadence even with no drift.
#[test]
fn every_n_frames_policy_snapshots_on_cadence() {
    let dir = scratch("cadence");
    let (night, _) = night_then_day(25);
    let mut odin = new_odin(TrainingMode::Inline);
    odin.enable_store(&dir, CheckpointPolicy::EveryNFrames(10)).expect("enable store");
    odin.process_stream(&night);
    odin.flush_store();
    assert!(odin.stats().snapshots_written >= 2, "cadence snapshots missing");
    assert!(dir.join(SNAPSHOT_FILE).exists());
    assert!(Odin::restore_from_dir(&dir).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

/// Recurring night/day frames under a 1-cluster cap: every regime
/// switch evicts the other regime's model into the attic, and returns
/// reinstall from it.
fn recurring_frames(total: usize, period: usize) -> Vec<Frame> {
    let gen = SceneGen::new(48);
    let mut rng = StdRng::seed_from_u64(2);
    RecurringSchedule::alternating(total, period, &[Subset::Night, Subset::Day])
        .generate(&gen, &mut rng)
}

fn attic_cfg() -> OdinConfig {
    let base = quick_cfg(TrainingMode::Inline);
    OdinConfig {
        manager: ManagerConfig { max_clusters: Some(1), ..base.manager },
        min_train_frames: 16,
        attic: AtticConfig::enabled(),
        ..base
    }
}

/// The attic survives both persistence paths: the checkpoint's ATTIC
/// section restores the archive bit-identically, and a WAL-only replay
/// (snapshot taken before anything was learned) converges the archive
/// through its Archive / Evict / AtticTake records alone.
#[test]
fn attic_survives_checkpoint_and_wal_replay() {
    let dir = scratch("attic-replay");
    let stream = recurring_frames(360, 60);

    let mut live = Odin::new(
        Box::new(HistogramEncoder::new()),
        Detector::heavy(48, &mut StdRng::seed_from_u64(0)),
        attic_cfg(),
        42,
    );
    live.enable_store(&dir, CheckpointPolicy::Manual).expect("enable store");
    live.checkpoint(&dir.join(SNAPSHOT_FILE)).expect("empty snapshot");
    live.process_stream(&stream);
    live.flush_store();
    let (archived, _) = live.attic_stats();
    assert!(archived > 0, "fixture never archived a model");
    let prom = live.telemetry().render_prometheus();
    assert!(!prom.contains("odin_attic_hits_total 0"), "fixture never hit the attic");

    // WAL-only replay: state (attic included) converges from the log.
    let replayed = Odin::restore_from_dir(&dir).expect("restore from dir");
    assert_eq!(replayed.attic_stats(), live.attic_stats(), "WAL replay diverged the attic");
    assert_eq!(replayed.manager().clusters().len(), live.manager().clusters().len());
    assert_eq!(registry_params(&replayed), registry_params(&live));

    // Checkpoint roundtrip: the ATTIC section carries the archive, and
    // the TELEMETRY section carries its counters.
    let snap = dir.join("attic-snap.odst");
    live.checkpoint(&snap).expect("checkpoint");
    let restored = Odin::restore(&snap).expect("restore");
    assert_eq!(restored.attic_stats(), live.attic_stats(), "checkpoint dropped the attic");
    let attic_counters = |o: &Odin| {
        o.telemetry()
            .snapshot()
            .counters
            .into_iter()
            .filter(|(n, _)| n.starts_with("odin_attic"))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        attic_counters(&restored),
        attic_counters(&live),
        "attic counters diverged across checkpoint/restore"
    );

    // All three must serve fresh frames bit-identically.
    let probe = recurring_frames(10, 5);
    let mut live = live;
    let mut replayed = replayed;
    let mut restored = restored;
    for f in &probe {
        let want = fingerprint(&live.infer_only(f));
        assert_eq!(want, fingerprint(&replayed.infer_only(f)), "WAL replay serves differently");
        assert_eq!(want, fingerprint(&restored.infer_only(f)), "restore serves differently");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A crash *between* the Archive append and the Evict append must
/// replay into "archived, never lost": the WAL order puts Archive
/// first, so the truncated log restores a system where the model is in
/// the attic and the cluster has not yet been evicted — nothing is
/// dropped on the floor.
#[test]
fn crash_between_archive_and_evict_keeps_the_model() {
    let dir = scratch("attic-crash");
    let stream = recurring_frames(360, 60);

    let mut live = Odin::new(
        Box::new(HistogramEncoder::new()),
        Detector::heavy(48, &mut StdRng::seed_from_u64(0)),
        attic_cfg(),
        42,
    );
    live.enable_store(&dir, CheckpointPolicy::Manual).expect("enable store");
    live.checkpoint(&dir.join(SNAPSHOT_FILE)).expect("empty snapshot");
    live.process_stream(&stream);
    live.flush_store();
    drop(live);

    // Chop the WAL immediately after the last Archive record (tag 4):
    // the crash happened before the matching Evict (tag 2) was appended.
    let wal_path = dir.join(WAL_FILE);
    let all = odin_store::read_wal(&wal_path).expect("read wal").records;
    let cut = all.iter().rposition(|r| r.payload[0] == 4).expect("no archive record") + 1;
    assert_eq!(all[cut].payload[0], 2, "archive must be directly followed by evict");
    std::fs::remove_file(&wal_path).expect("drop wal");
    let mut w = odin_store::WalWriter::open(&wal_path).expect("rewrite wal");
    for r in &all[..cut] {
        w.append(&r.payload).expect("append prefix");
    }
    w.sync().expect("sync");
    drop(w);

    let mut recovered = Odin::restore_from_dir(&dir).expect("restore across crash");
    let (archived, _) = recovered.attic_stats();
    assert!(archived > 0, "archived model lost across the crash");
    // The eviction never became durable, so the cluster (and its
    // registered model) are still live alongside the archived copy.
    assert!(recovered.model_count() > 0, "registry lost the not-yet-evicted model");
    // The recovered system keeps serving.
    for f in &recurring_frames(10, 5) {
        recovered.infer_only(f);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A crash halfway through a snapshot write must leave the *previous*
/// snapshot intact: writes go to a tmp file and rename in.
#[test]
fn atomic_snapshot_never_destroys_the_previous_one() {
    let path = scratch("atomic").join("snap.odst");
    let (night, day) = night_then_day(40);
    let mut odin = new_odin(TrainingMode::Inline);
    odin.process_stream(&night);
    odin.checkpoint(&path).expect("first checkpoint");
    let first = std::fs::read(&path).expect("read first");

    odin.process_stream(&day);
    odin.checkpoint(&path).expect("second checkpoint");
    let second = std::fs::read(&path).expect("read second");
    assert_ne!(first, second, "state changed, snapshots must differ");
    // Both generations parse — the overwrite was a whole-file swap.
    assert!(Odin::restore(&path).is_ok());
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

//! Telemetry contracts: expositions are bit-identical at any
//! `ODIN_THREADS` and across checkpoint/restore (given a manual clock),
//! store failures are counted and surfaced instead of silently dropped,
//! and the drift timeline records the full detect → queue → install arc.

use std::path::PathBuf;
use std::sync::Arc;

use odin_core::encoder::HistogramEncoder;
use odin_core::pipeline::{Odin, OdinConfig};
use odin_core::specializer::SpecializerConfig;
use odin_core::training::TrainingMode;
use odin_core::CheckpointPolicy;
use odin_data::{Frame, SceneGen, Subset};
use odin_detect::{Detector, DetectorArch};
use odin_drift::ManagerConfig;
use odin_telemetry::{Level, ManualClock, RingSink, TimelineStage};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_cfg(training: TrainingMode) -> OdinConfig {
    OdinConfig {
        manager: ManagerConfig {
            min_points: 12,
            stable_window: 4,
            kl_eps: 5e-3,
            hist_hi: 8.0,
            ..ManagerConfig::default()
        },
        specializer: SpecializerConfig {
            arch: DetectorArch::Small,
            frame_size: 48,
            train_iters: 30,
            distill_iters: 20,
            batch_size: 4,
        },
        min_train_frames: 20,
        training,
        ..OdinConfig::default()
    }
}

/// A fresh pipeline with a manual clock installed, so every recorded
/// duration and timestamp is a pure function of the frame stream.
fn new_odin() -> Odin {
    let mut rng = StdRng::seed_from_u64(0);
    let teacher = Detector::heavy(48, &mut rng);
    let odin =
        Odin::new(Box::new(HistogramEncoder::new()), teacher, quick_cfg(TrainingMode::Inline), 42);
    odin.telemetry().set_clock(Arc::new(ManualClock::new()));
    odin.telemetry().clear_sinks();
    odin
}

fn night_then_day(n_each: usize) -> (Vec<Frame>, Vec<Frame>) {
    let gen = SceneGen::new(48);
    let mut rng = StdRng::seed_from_u64(2);
    (
        gen.subset_frames(&mut rng, Subset::Night, n_each),
        gen.subset_frames(&mut rng, Subset::Day, n_each),
    )
}

/// Unique scratch path per test (the suite may run in parallel).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("odin-tel-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Both expositions are byte-identical when the pipeline runs the same
/// stream on one worker thread vs two: bucket counts come from fixed
/// bounds, timestamps from the manual clock, and iteration order from
/// sorted maps — none of it depends on scheduling.
#[test]
fn renders_are_identical_across_thread_counts() {
    let (night, day) = night_then_day(50);

    let render_with = |threads: usize| {
        odin_tensor::par::set_num_threads(threads);
        let mut odin = new_odin();
        odin.process_stream(&night);
        odin.process_stream(&day);
        (odin.telemetry().render_prometheus(), odin.telemetry().render_json())
    };

    let (prom1, json1) = render_with(1);
    let (prom2, json2) = render_with(2);
    assert_eq!(prom1, prom2, "prometheus exposition depends on thread count");
    assert_eq!(json1, json2, "json exposition depends on thread count");
    assert!(prom1.contains("odin_frames_total 100"));
}

/// A checkpoint carries the full telemetry state: the restored pipeline,
/// after serving the same remaining stream, renders byte-for-byte what
/// the original rendered — counters, histogram buckets, and the drift
/// timeline all survive the round trip.
#[test]
fn renders_survive_checkpoint_restore() {
    let path = scratch("roundtrip").join("snap.odst");
    let (night, day) = night_then_day(60);

    let mut original = new_odin();
    original.process_stream(&night);
    original.checkpoint(&path).expect("checkpoint");
    original.process_stream(&day);

    let restored = Odin::restore(&path).expect("restore");
    restored.telemetry().set_clock(Arc::new(ManualClock::new()));
    restored.telemetry().clear_sinks();
    let mut restored = restored;
    restored.process_stream(&day);

    assert_eq!(
        original.telemetry().render_prometheus(),
        restored.telemetry().render_prometheus(),
        "prometheus exposition diverged across checkpoint/restore"
    );
    assert_eq!(original.telemetry().render_json(), restored.telemetry().render_json());
    assert_eq!(original.telemetry().timeline(), restored.telemetry().timeline());
}

/// The drift timeline records the whole recovery arc in order: drift
/// detected, training job queued, and a model installed — each tagged
/// with the cluster and stream position.
#[test]
fn timeline_records_recovery_arc() {
    let (night, day) = night_then_day(60);
    let mut odin = new_odin();
    odin.process_stream(&night);
    odin.process_stream(&day);

    let timeline = odin.telemetry().timeline();
    let pos = |stage: TimelineStage| timeline.iter().position(|t| t.stage == stage);
    let detected = pos(TimelineStage::DriftDetected).expect("no drift detected");
    let queued = pos(TimelineStage::TrainJobQueued).expect("no job queued");
    let installed = timeline
        .iter()
        .position(|t| {
            matches!(t.stage, TimelineStage::LiteInstalled | TimelineStage::SpecializedInstalled)
        })
        .expect("no model installed");
    assert!(detected < queued, "job queued before drift was detected");
    assert!(queued <= installed, "model installed before its job was queued");
    assert!(timeline[installed].frame >= timeline[detected].frame);

    let stats = odin.stats();
    assert_eq!(stats.store_errors, 0);
    assert_eq!(stats.last_store_error, None);
    assert_eq!(odin.telemetry().snapshot().counters.len(), 21);
}

/// Store failures are machine-visible: when the snapshot directory is
/// destroyed mid-stream, background snapshot writes fail, the failure is
/// counted in `PipelineStats::store_errors`, described in
/// `last_store_error`, and emitted as an error-level event — while the
/// serving path keeps going.
#[test]
fn store_write_failures_are_counted_and_reported() {
    let dir = scratch("broken-store");
    let (night, _) = night_then_day(60);

    let mut odin = new_odin();
    let ring = Arc::new(RingSink::new(32));
    odin.telemetry().add_sink(ring.clone());
    odin.enable_store(&dir, CheckpointPolicy::EveryNFrames(10)).expect("enable store");

    odin.process_stream(&night[..20]);
    odin.flush_store();
    assert_eq!(odin.stats().store_errors, 0, "store failed on a healthy directory");

    // Replace the store directory with a regular file: the WAL survives
    // through its already-open handle, but every atomic snapshot write
    // now fails with ENOTDIR when it creates its temp file.
    std::fs::remove_dir_all(&dir).expect("remove store dir");
    std::fs::write(&dir, b"not a directory").expect("plant blocking file");

    odin.process_stream(&night[20..]);
    odin.flush_store();

    let stats = odin.stats();
    assert!(stats.store_errors > 0, "snapshot writes to a dead dir were not counted");
    let last = stats.last_store_error.expect("no last_store_error recorded");
    assert!(last.contains("snapshot write"), "unexpected error text: {last}");
    assert!(
        ring.events().iter().any(|e| e.level == Level::Error && e.target == "store"),
        "no error-level store event reached the sink"
    );
    // Serving never stopped: every frame was still processed.
    assert!(odin.telemetry().render_prometheus().contains("odin_frames_total 60"));
    std::fs::remove_file(&dir).ok();
}

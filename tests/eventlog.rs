//! Event-log contracts: every served frame and every recovery stage
//! lands in the log exactly once, in causal order, with contents that
//! mirror the serving results; two identical runs produce *byte
//! identical* log files; and a multi-stream deployment survives a crash
//! mid-segment-write — the intact prefix scans, the sequence resumes
//! past both the checkpoint and the torn tail, and the full
//! detect → queue → install arc is reconstructable by trace id.

use std::path::PathBuf;
use std::sync::Arc;

use odin_core::encoder::HistogramEncoder;
use odin_core::pipeline::{Odin, OdinConfig};
use odin_core::server::{OdinServer, ServerConfig};
use odin_core::specializer::SpecializerConfig;
use odin_core::training::TrainingMode;
use odin_core::{
    AtticConfig, CheckpointPolicy, EventLogConfig, ServedBy, EVENT_LOG_FILE, STREAMS_DIR,
};
use odin_data::{Frame, RecurringSchedule, SceneGen, Subset};
use odin_detect::{Detector, DetectorArch};
use odin_drift::ManagerConfig;
use odin_log::{scan_log, scan_store, LogRecord, Predicate, RecordKind, ServedLabel};
use odin_telemetry::ManualClock;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_cfg() -> OdinConfig {
    OdinConfig {
        manager: ManagerConfig {
            min_points: 12,
            stable_window: 4,
            kl_eps: 5e-3,
            hist_hi: 8.0,
            ..ManagerConfig::default()
        },
        specializer: SpecializerConfig {
            arch: DetectorArch::Small,
            frame_size: 48,
            train_iters: 30,
            distill_iters: 20,
            batch_size: 4,
        },
        min_train_frames: 20,
        training: TrainingMode::Inline,
        // Small segments so a ~100-frame run spans several of them.
        event_log: EventLogConfig {
            enabled: true,
            queue_cap: 4096,
            segment_records: 16,
            ..Default::default()
        },
        ..OdinConfig::default()
    }
}

fn new_odin() -> Odin {
    let mut rng = StdRng::seed_from_u64(0);
    let teacher = Detector::heavy(48, &mut rng);
    let odin = Odin::new(Box::new(HistogramEncoder::new()), teacher, quick_cfg(), 42);
    odin.telemetry().clear_sinks();
    odin
}

fn night_then_day(n_each: usize) -> (Vec<Frame>, Vec<Frame>) {
    let gen = SceneGen::new(48);
    let mut rng = StdRng::seed_from_u64(2);
    (
        gen.subset_frames(&mut rng, Subset::Night, n_each),
        gen.subset_frames(&mut rng, Subset::Day, n_each),
    )
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("odin-evlog-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn served_label(s: ServedBy) -> ServedLabel {
    match s {
        ServedBy::Teacher => ServedLabel::Teacher,
        ServedBy::Ensemble => ServedLabel::Ensemble,
        ServedBy::FallbackEnsemble => ServedLabel::Fallback,
    }
}

/// Requires a complete detect → queue → install arc joined on one
/// trace id, in causal (seq) order, all about the same cluster.
fn assert_recovery_arc(records: &[LogRecord]) {
    let install = records
        .iter()
        .find(|r| r.kind == RecordKind::ModelInstalled)
        .expect("no model installed in log");
    let arc: Vec<&LogRecord> = records
        .iter()
        .filter(|r| r.trace == install.trace && r.kind != RecordKind::Frame)
        .collect();
    let pos = |k: RecordKind| arc.iter().position(|r| r.kind == k);
    let detect = pos(RecordKind::DriftDetected).expect("arc lost its drift record");
    let queued = pos(RecordKind::TrainQueued).expect("arc lost its queue record");
    let installed = pos(RecordKind::ModelInstalled).unwrap();
    assert!(detect < queued && queued < installed, "arc out of causal order");
    assert!(arc[detect].seq < arc[queued].seq && arc[queued].seq < arc[installed].seq);
    assert_eq!(arc[detect].cluster, arc[installed].cluster, "arc spans two clusters");
}

/// One `Frame` record per served frame, in order, mirroring the
/// `FrameResult`s; recovery records join into arcs by trace id; and the
/// per-pipeline sequence is dense from 1.
#[test]
fn frame_records_mirror_serving_results() {
    let dir = scratch("mirror");
    let (night, day) = night_then_day(50);
    let mut odin = new_odin();
    odin.telemetry().set_clock(Arc::new(ManualClock::new()));
    odin.enable_store(&dir, CheckpointPolicy::Manual).expect("enable_store");
    let mut results = odin.process_stream(&night);
    results.extend(odin.process_stream(&day));
    odin.flush_store();

    let res = scan_log(&dir.join(EVENT_LOG_FILE), &Predicate::default()).expect("scan");
    for (i, w) in res.records.windows(2).enumerate() {
        assert_eq!(w[1].seq, w[0].seq + 1, "sequence gap at record {i}");
    }
    assert_eq!(res.records.first().map(|r| r.seq), Some(1));

    let frames: Vec<&LogRecord> =
        res.records.iter().filter(|r| r.kind == RecordKind::Frame).collect();
    assert_eq!(frames.len(), results.len(), "one frame record per served frame");
    for (i, (rec, fr)) in frames.iter().zip(&results).enumerate() {
        assert_eq!(rec.frame, i as u64, "frame index diverged at {i}");
        assert_eq!(rec.stream, 0);
        assert_eq!(rec.dets, fr.detections.len() as u32, "det count diverged at {i}");
        assert_eq!(rec.served, served_label(fr.served_by), "served path diverged at {i}");
        if let Some(best) = fr.detections.iter().map(|d| d.score).reduce(f32::max) {
            assert_eq!(rec.conf_max, best, "conf_max diverged at {i}");
        }
    }
    assert!(res.stats.segments_total >= 3, "fixture must span >= 3 segments");
    assert_recovery_arc(&res.records);
    std::fs::remove_dir_all(&dir).ok();
}

/// With a manual clock advanced per frame, two identical runs write
/// byte-identical log files — the log inherits the pipeline's replay
/// determinism (segment seals included).
#[test]
fn identical_runs_write_byte_identical_logs() {
    let (night, day) = night_then_day(40);
    let run = |tag: &str| {
        let dir = scratch(tag);
        let mut odin = new_odin();
        let clock = Arc::new(ManualClock::new());
        odin.telemetry().set_clock(clock.clone());
        odin.enable_store(&dir, CheckpointPolicy::Manual).expect("enable_store");
        for f in night.iter().chain(&day) {
            odin.process(f);
            clock.advance_ms(1.0);
        }
        odin.flush_store();
        let bytes = std::fs::read(dir.join(EVENT_LOG_FILE)).expect("log written");
        std::fs::remove_dir_all(&dir).ok();
        bytes
    };
    let a = run("det-a");
    let b = run("det-b");
    assert!(!a.is_empty());
    assert_eq!(a, b, "event log bytes diverged between identical runs");
}

/// Crash/restore on a 2-stream server with a torn segment write: the
/// intact prefix scans, the reopened writer resumes past both the
/// checkpointed position and the file tail (no sequence reuse), and a
/// full recovery arc is still reconstructable afterwards.
#[test]
fn crash_mid_write_resumes_sequence_and_keeps_arcs() {
    let dir = scratch("crash");
    let cfg =
        ServerConfig { streams: 2, workers: 2, queue_cap: 64, batch_max: 8, odin: quick_cfg() };
    let frames = [night_then_day(40), night_then_day(30)];
    let server = OdinServer::build(
        cfg,
        |_| Box::new(HistogramEncoder::new()),
        Detector::heavy(48, &mut StdRng::seed_from_u64(0)),
        42,
    );
    for i in 0..2 {
        server.with_shard(i, |o| o.telemetry().clear_sinks());
    }
    server.enable_store(&dir, CheckpointPolicy::Manual).expect("enable_store");
    for (stream, (night, day)) in frames.iter().enumerate() {
        for f in night.iter().chain(day) {
            server.process(stream, f.clone()).expect("admitted");
        }
    }
    server.drain();
    for i in 0..2 {
        server.with_shard(i, |o| o.flush_store());
    }
    server.checkpoint_all(&dir).expect("checkpoint_all");
    let shard0_log = dir.join(STREAMS_DIR).join("0").join(EVENT_LOG_FILE);
    let before = scan_store(&dir, &Predicate::default()).expect("scan before crash");
    assert!(before.records.iter().any(|r| r.stream == 1), "fixture: stream 1 silent");
    drop(server);

    // Crash mid-flush: chop the last segment in half.
    let bytes = std::fs::read(&shard0_log).expect("log exists");
    std::fs::write(&shard0_log, &bytes[..bytes.len() - 30]).expect("tear");
    let torn = scan_log(&shard0_log, &Predicate::default()).expect("scan torn");
    assert!(torn.stats.torn_tail, "fixture must actually tear a segment");
    let tail_seq = torn.records.last().map(|r| r.seq).unwrap_or(0);

    let cfg =
        ServerConfig { streams: 2, workers: 2, queue_cap: 64, batch_max: 8, odin: quick_cfg() };
    let restored = OdinServer::restore_from_dir(&dir, cfg).expect("restore");
    for i in 0..2 {
        restored.with_shard(i, |o| o.telemetry().clear_sinks());
    }
    restored.enable_store(&dir, CheckpointPolicy::Manual).expect("re-enable store");
    let probe = {
        let gen = SceneGen::new(48);
        gen.subset_frames(&mut StdRng::seed_from_u64(99), Subset::Rain, 10)
    };
    for f in &probe {
        restored.process(0, f.clone()).expect("admitted");
        restored.process(1, f.clone()).expect("admitted");
    }
    restored.drain();
    for i in 0..2 {
        restored.with_shard(i, |o| o.flush_store());
    }

    let after = scan_log(&shard0_log, &Predicate::default()).expect("scan after restore");
    assert!(!after.stats.torn_tail, "reopen must heal the torn tail");
    assert!(after.records.len() > torn.records.len(), "post-restore records missing");
    for w in after.records.windows(2) {
        assert!(w[1].seq > w[0].seq, "sequence reused across the crash");
    }
    let first_new = after.records[torn.records.len()].seq;
    assert!(
        first_new > tail_seq,
        "resumed seq {first_new} does not clear the torn tail {tail_seq}"
    );

    // The whole store still joins into recovery arcs per stream.
    let merged = scan_store(&dir, &Predicate::default()).expect("scan store");
    for stream in 0..2u32 {
        let shard: Vec<LogRecord> =
            merged.records.iter().filter(|r| r.stream == stream).copied().collect();
        assert!(!shard.is_empty());
        assert_recovery_arc(&shard);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The event-log metric family and health fields are live: appends are
/// counted per shard, the queue drains after a flush, and both healthz
/// renders expose the queue depth.
#[test]
fn metrics_and_healthz_surface_the_event_log() {
    let dir = scratch("metrics");
    let cfg =
        ServerConfig { streams: 2, workers: 2, queue_cap: 64, batch_max: 8, odin: quick_cfg() };
    let server = OdinServer::build(
        cfg,
        |_| Box::new(HistogramEncoder::new()),
        Detector::heavy(48, &mut StdRng::seed_from_u64(0)),
        42,
    );
    for i in 0..2 {
        server.with_shard(i, |o| o.telemetry().clear_sinks());
    }
    server.enable_store(&dir, CheckpointPolicy::Manual).expect("enable_store");
    let gen = SceneGen::new(48);
    let probe = gen.subset_frames(&mut StdRng::seed_from_u64(5), Subset::Day, 6);
    for f in &probe {
        server.process(0, f.clone()).expect("admitted");
        server.process(1, f.clone()).expect("admitted");
    }
    server.drain();
    for i in 0..2 {
        server.with_shard(i, |o| o.flush_store());
    }

    let metrics = server.render_metrics();
    assert!(metrics.contains("odin_event_log_appended_total{stream=\"0\"} 6"), "{metrics}");
    assert!(metrics.contains("odin_event_log_appended_total{stream=\"1\"} 6"), "{metrics}");
    assert!(metrics.contains("odin_event_log_dropped_total{stream=\"0\"} 0"), "{metrics}");
    assert!(metrics.contains("odin_event_log_queue_depth{stream=\"0\"} 0"), "{metrics}");
    let health = server.render_healthz();
    assert!(health.contains("\"event_log_queue_depths\":[0,0]"), "{health}");
    let shard_health = server.with_shard(0, |o| o.telemetry().render_healthz());
    assert!(shard_health.contains("\"event_log_queue_depth\":0"), "{shard_health}");
    std::fs::remove_dir_all(&dir).ok();
}

/// An attic reinstall logs a distinct recovery arc: on one trace id,
/// detect → attic hit → install, in causal order, with *no* train-queue
/// record (nothing was queued — the cached model was reinstalled), all
/// about the same cluster.
#[test]
fn attic_hit_joins_the_recovery_arc() {
    let dir = scratch("attic-arc");
    let base = quick_cfg();
    let cfg = OdinConfig {
        manager: ManagerConfig { max_clusters: Some(1), ..base.manager },
        min_train_frames: 16,
        attic: AtticConfig::enabled(),
        ..base
    };
    let mut odin = {
        let mut rng = StdRng::seed_from_u64(0);
        let teacher = Detector::heavy(48, &mut rng);
        Odin::new(Box::new(HistogramEncoder::new()), teacher, cfg, 42)
    };
    odin.telemetry().clear_sinks();
    odin.enable_store(&dir, CheckpointPolicy::Manual).expect("enable_store");

    // Night, day, night, ...: from the third window on, each switch
    // returns to a regime whose model sits in the attic.
    let gen = SceneGen::new(48);
    let mut rng = StdRng::seed_from_u64(2);
    let stream = RecurringSchedule::alternating(360, 60, &[Subset::Night, Subset::Day])
        .generate(&gen, &mut rng);
    odin.process_stream(&stream);
    odin.flush_store();

    let res = scan_log(&dir.join(EVENT_LOG_FILE), &Predicate::default()).expect("scan");
    let hits: Vec<&LogRecord> =
        res.records.iter().filter(|r| r.kind == RecordKind::AtticHit).collect();
    assert!(!hits.is_empty(), "recurring stream produced no attic hits");
    for hit in hits {
        let arc: Vec<&LogRecord> = res
            .records
            .iter()
            .filter(|r| r.trace == hit.trace && r.kind != RecordKind::Frame)
            .collect();
        let pos = |k: RecordKind| arc.iter().position(|r| r.kind == k);
        let detect = pos(RecordKind::DriftDetected).expect("attic arc lost its drift record");
        let reinstall = pos(RecordKind::AtticHit).unwrap();
        let installed = pos(RecordKind::ModelInstalled).expect("attic arc never installed");
        assert!(detect < reinstall && reinstall < installed, "attic arc out of causal order");
        assert!(pos(RecordKind::TrainQueued).is_none(), "attic hit still queued a train job");
        assert_eq!(arc[detect].cluster, arc[installed].cluster, "attic arc spans two clusters");
        assert_eq!(
            arc[installed].latency_us, 0,
            "reinstall must report zero train latency (nothing was trained)"
        );
    }
    // The kind filter reaches the same records through the zone maps.
    let filtered = scan_log(
        &dir.join(EVENT_LOG_FILE),
        &Predicate { kind: Some(RecordKind::AtticHit), ..Predicate::default() },
    )
    .expect("scan attic_hit");
    assert!(!filtered.records.is_empty());
    assert!(filtered.records.iter().all(|r| r.kind == RecordKind::AtticHit));
    std::fs::remove_dir_all(&dir).ok();
}

/// Disabled by default: no writer, no file, no metric movement.
#[test]
fn disabled_log_writes_nothing() {
    let dir = scratch("disabled");
    let mut odin = {
        let mut rng = StdRng::seed_from_u64(0);
        let teacher = Detector::heavy(48, &mut rng);
        let cfg = OdinConfig { event_log: EventLogConfig::default(), ..quick_cfg() };
        Odin::new(Box::new(HistogramEncoder::new()), teacher, cfg, 42)
    };
    odin.telemetry().clear_sinks();
    odin.enable_store(&dir, CheckpointPolicy::Manual).expect("enable_store");
    let (night, _) = night_then_day(10);
    odin.process_stream(&night);
    odin.flush_store();
    assert!(!dir.join(EVENT_LOG_FILE).exists(), "disabled log still wrote a file");
    assert!(odin.telemetry().render_prometheus().contains("odin_event_log_appended_total 0"));
    std::fs::remove_dir_all(&dir).ok();
}

//! Cross-crate integration tests: the DA-GAN encoder feeding the drift
//! machinery, and the detector feeding queries — the component seams the
//! unit tests cannot cover.

use odin_core::encoder::{DaGanEncoder, LatentEncoder};
use odin_core::query::{count_accuracy, CountQuery};
use odin_data::digits::{digit_dataset, gen_digit};
use odin_data::{Image, ObjectClass, SceneGen, Subset};
use odin_detect::Detector;
use odin_drift::baselines::{LatentKnn, PcaDetector};
use odin_drift::eval::best_f1;
use odin_drift::{ClusterManager, ManagerConfig};
use odin_gan::{DaGan, DaGanConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_dagan_cfg() -> DaGanConfig {
    // denoise_std = 0 here: denoising smooths the latent toward
    // invariance, which at this test's tiny 250-iteration scale maps
    // unseen digits *inside* the known bands. The denoising default is
    // exercised by the Table-1 harness and the odin-gan unit tests.
    DaGanConfig {
        channels: 1,
        size: 32,
        latent: 16,
        width: 6,
        lr: 1.5e-3,
        lambda_r: 0.5,
        denoise_std: 0.0,
    }
}

/// Train a DA-GAN on two digit classes; its latent space plus the online
/// cluster manager must detect the arrival of an unseen digit class as
/// drift. This is DETECTOR end-to-end (§4.5) at digit scale.
#[test]
fn dagan_plus_cluster_manager_detects_unseen_digits() {
    let mut rng = StdRng::seed_from_u64(100);
    let known: Vec<Image> =
        digit_dataset(&mut rng, &[0, 1], 60).into_iter().map(|s| s.image).collect();
    let mut dagan = DaGan::new(tiny_dagan_cfg(), &mut rng);
    dagan.train(&mut rng, &known, 250, 8);
    let mut encoder = DaGanEncoder::new(dagan);

    let cfg = ManagerConfig {
        min_points: 20,
        stable_window: 6,
        kl_eps: 5e-3,
        hist_hi: 8.0,
        ..ManagerConfig::default()
    };
    let mut manager = ClusterManager::new(cfg);

    // Bootstrap on known data: at least one cluster must form.
    let known_latents: Vec<Vec<f32>> = known.iter().map(|im| encoder.project(im)).collect();
    manager.bootstrap(&known_latents);
    let clusters_before = manager.clusters().len();
    assert!(clusters_before >= 1, "no cluster formed on known digits");
    let events_before = manager.events().len();

    // Stream an unseen digit class: drift must eventually fire.
    let unseen: Vec<Image> = (0..120).map(|_| gen_digit(&mut rng, 8)).collect();
    for im in &unseen {
        let z = encoder.project(im);
        let _ = manager.observe(&z);
    }
    assert!(
        manager.events().len() > events_before,
        "unseen digit class did not trigger a drift event"
    );
}

/// Table 1's protocol at integration-test scale: the DA-GAN latent kNN
/// score must carry real outlier signal and stay in the same league as a
/// PCA residual on raw pixels. (At paper scale — ResNet encoders, 100
/// epochs — DA-GAN dominates; at this test's 600-iteration scale we
/// assert competitiveness, and the bench harness reports the measured
/// gap. See EXPERIMENTS.md.)
#[test]
fn dagan_latent_is_competitive_on_digit_outliers() {
    let mut rng = StdRng::seed_from_u64(101);
    let train: Vec<Image> =
        digit_dataset(&mut rng, &[0, 1, 2], 60).into_iter().map(|s| s.image).collect();
    let cfg = DaGanConfig { latent: 32, width: 12, ..tiny_dagan_cfg() };
    let mut dagan = DaGan::new(cfg, &mut rng);
    dagan.train(&mut rng, &train, 700, 8);
    let mut encoder = DaGanEncoder::new(dagan);

    // Mixed test stream: 30% outliers from unseen classes.
    let mixed =
        odin_data::digits::outlier_mix(&mut rng, &[0, 1, 2], &[7, 8, 9], 120, 0.3, gen_digit);

    // DA-GAN latent kNN.
    let train_latents: Vec<Vec<f32>> = train.iter().map(|im| encoder.project(im)).collect();
    let knn = LatentKnn::new(train_latents, 3);
    let dg_scores: Vec<f32> = mixed.iter().map(|(im, _)| knn.score(&encoder.project(im))).collect();

    // PCA residual on raw pixels.
    let train_pixels: Vec<Vec<f32>> = train.iter().map(|im| im.data().to_vec()).collect();
    let pca = PcaDetector::fit(&train_pixels, 8, 25);
    let pca_scores: Vec<f32> = mixed.iter().map(|(im, _)| pca.score(im.data())).collect();

    let labels: Vec<bool> = mixed.iter().map(|&(_, o)| o).collect();
    let f1_dg = best_f1(&dg_scores, &labels);
    let f1_pca = best_f1(&pca_scores, &labels);
    // Baseline F1 of flagging everything at 30% outliers is 2p/(1+p) ≈ 0.46.
    assert!(f1_dg > 0.46, "DA-GAN outlier F1 {f1_dg} carries no signal");
    assert!(f1_dg >= f1_pca - 0.3, "DA-GAN F1 {f1_dg} implausibly far behind PCA F1 {f1_pca}");
}

/// A trained detector must answer counting queries usefully better than
/// an untrained one (detector → query seam).
#[test]
fn detector_feeds_count_queries() {
    let mut rng = StdRng::seed_from_u64(102);
    let gen = SceneGen::new(48);
    let train = gen.subset_frames(&mut rng, Subset::Day, 120);
    let test = gen.subset_frames(&mut rng, Subset::Day, 30);
    let query = CountQuery::new(ObjectClass::Car);
    let truth: Vec<usize> = test.iter().map(|f| query.ground_truth(f)).collect();

    let mut trained = Detector::small(48, &mut rng);
    trained.train_oracle(&mut rng, &train, 600, 8);
    let counts: Vec<usize> = test.iter().map(|f| query.count(&trained.detect(&f.image))).collect();

    let fresh = Detector::small(48, &mut rng);
    let fresh_counts: Vec<usize> =
        test.iter().map(|f| query.count(&fresh.detect(&f.image))).collect();

    let acc_trained = count_accuracy(&counts, &truth);
    let acc_fresh = count_accuracy(&fresh_counts, &truth);
    assert!(
        acc_trained > acc_fresh,
        "trained query accuracy {acc_trained} should beat untrained {acc_fresh}"
    );
    assert!(acc_trained > 0.4, "trained query accuracy {acc_trained} too low");
}

/// The DA-GAN encoder must be usable as a generic `LatentEncoder` over
/// BDD frames (shape contract across odin-gan / odin-core / odin-data).
#[test]
fn dagan_encoder_handles_bdd_frames() {
    let mut rng = StdRng::seed_from_u64(103);
    let cfg = DaGanConfig {
        channels: 3,
        size: 48,
        latent: 24,
        width: 6,
        lr: 1e-3,
        lambda_r: 0.5,
        denoise_std: 0.25,
    };
    let mut encoder = DaGanEncoder::new(DaGan::new(cfg, &mut rng));
    let gen = SceneGen::new(48);
    let frames = gen.subset_frames(&mut rng, Subset::Full, 4);
    let refs: Vec<&Image> = frames.iter().map(|f| &f.image).collect();
    let latents = encoder.project_batch(&refs);
    assert_eq!(latents.len(), 4);
    assert!(latents.iter().all(|z| z.len() == 24));
    assert!(latents.iter().flatten().all(|v| v.is_finite()));
}

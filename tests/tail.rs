//! Live-tail contracts: `GET /events` pages the per-stream event logs
//! with durable cursors (no record duplicated, none skipped, torn
//! tails invisible), long-polls until new sealed records arrive, and
//! `GET /flight` serves the live flight recorder; a reader chasing a
//! live writer never observes a torn record; a cursor survives a
//! writer restart; and retention compaction leaves `scan_log` and its
//! [`ScanStats`] consistent on the retained suffix.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use odin_core::encoder::HistogramEncoder;
use odin_core::pipeline::{Odin, OdinConfig};
use odin_core::server::{OdinServer, ServerConfig};
use odin_core::specializer::SpecializerConfig;
use odin_core::training::TrainingMode;
use odin_core::{CheckpointPolicy, EventLogConfig, RetentionConfig};
use odin_data::{Frame, SceneGen, Subset};
use odin_detect::{Detector, DetectorArch};
use odin_drift::ManagerConfig;
use odin_log::writer::{LogMetrics, LogWriter};
use odin_log::{read_after, read_log, scan_log, Cursor, LogRecord, Predicate, RecordKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_cfg() -> OdinConfig {
    OdinConfig {
        manager: ManagerConfig {
            min_points: 12,
            stable_window: 4,
            kl_eps: 5e-3,
            hist_hi: 8.0,
            ..ManagerConfig::default()
        },
        specializer: SpecializerConfig {
            arch: DetectorArch::Small,
            frame_size: 48,
            train_iters: 30,
            distill_iters: 20,
            batch_size: 4,
        },
        min_train_frames: 20,
        training: TrainingMode::Inline,
        event_log: EventLogConfig {
            enabled: true,
            queue_cap: 4096,
            segment_records: 16,
            ..Default::default()
        },
        ..OdinConfig::default()
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("odin-tail-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn night_then_day(n_each: usize) -> (Vec<Frame>, Vec<Frame>) {
    let gen = SceneGen::new(48);
    let mut rng = StdRng::seed_from_u64(2);
    (
        gen.subset_frames(&mut rng, Subset::Night, n_each),
        gen.subset_frames(&mut rng, Subset::Day, n_each),
    )
}

fn rec(seq: u64) -> LogRecord {
    LogRecord { seq, ts_us: seq * 1000, frame: seq, ..LogRecord::empty() }
}

// -- tiny JSON scrapers for the hand-rolled /events body --------------

/// The string value of `"key":"..."` at its first occurrence.
fn json_str(body: &str, key: &str) -> String {
    let pat = format!("\"{key}\":\"");
    let start = body.find(&pat).unwrap_or_else(|| panic!("no {key} in {body}")) + pat.len();
    body[start..].split('"').next().unwrap().to_string()
}

/// Every numeric value of `"key":N` in order of occurrence.
fn json_u64s(body: &str, key: &str) -> Vec<u64> {
    let pat = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(i) = rest.find(&pat) {
        rest = &rest[i + pat.len()..];
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        out.push(digits.parse().expect("numeric field"));
    }
    out
}

/// Every string value of `"key":"..."` in order of occurrence.
fn json_strs(body: &str, key: &str) -> Vec<String> {
    let pat = format!("\"{key}\":\"");
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(i) = rest.find(&pat) {
        rest = &rest[i + pat.len()..];
        out.push(rest.split('"').next().unwrap().to_string());
        rest = &rest[1..];
    }
    out
}

/// `GET /events` pages the sharded server's logs end to end: every
/// record is delivered exactly once in per-stream seq order, the
/// recovery arc (drift → install) is visible, the final page is empty
/// with a stable cursor, kind filters narrow the stream, and malformed
/// cursors are rejected.
#[test]
fn http_events_pages_the_sharded_log_with_cursors() {
    let dir = scratch("http");
    let cfg =
        ServerConfig { streams: 2, workers: 2, queue_cap: 64, batch_max: 8, odin: quick_cfg() };
    let mut server = OdinServer::build(
        cfg,
        |_| Box::new(HistogramEncoder::new()),
        Detector::heavy(48, &mut StdRng::seed_from_u64(0)),
        42,
    );
    for i in 0..2 {
        server.with_shard(i, |o| o.telemetry().clear_sinks());
    }
    server.enable_store(&dir, CheckpointPolicy::Manual).expect("enable_store");
    let (night, day) = night_then_day(40);
    for f in night.iter().chain(&day) {
        server.process(0, f.clone()).expect("admitted");
        server.process(1, f.clone()).expect("admitted");
    }
    server.drain();
    for i in 0..2 {
        server.with_shard(i, |o| o.flush_store());
    }
    let addr = server.serve("127.0.0.1:0").expect("bind");

    // healthz surfaces the admission cap for degraded-state probes.
    let (status, health) = odin_telemetry::http::get(addr, "/healthz").expect("healthz");
    assert!(status.contains("200"), "{status}");
    assert!(health.contains("\"queue_cap\":64"), "{health}");

    // Page through everything in small chunks.
    let mut cursor = String::new();
    let mut kinds: Vec<String> = Vec::new();
    let mut per_stream: Vec<Vec<u64>> = vec![Vec::new(); 2];
    loop {
        let path = format!("/events?cursor={cursor}&limit=32");
        let (status, body) = odin_telemetry::http::get(addr, &path).expect("events");
        assert!(status.contains("200"), "{status}: {body}");
        let next = json_str(&body, "cursor");
        let seqs = json_u64s(&body, "seq");
        let streams = json_u64s(&body, "stream");
        assert_eq!(seqs.len(), streams.len());
        if seqs.is_empty() {
            assert_eq!(next, cursor, "empty page must not move the cursor");
            break;
        }
        for (seq, stream) in seqs.iter().zip(&streams) {
            per_stream[*stream as usize].push(*seq);
        }
        kinds.extend(json_strs(&body, "kind"));
        cursor = next;
    }
    for (stream, seqs) in per_stream.iter().enumerate() {
        assert!(!seqs.is_empty(), "stream {stream} never surfaced");
        for w in seqs.windows(2) {
            assert!(w[1] > w[0], "stream {stream}: seq {} then {}", w[0], w[1]);
        }
    }
    assert!(kinds.iter().any(|k| k == "drift_detected"), "no drift in {kinds:?}");
    assert!(kinds.iter().any(|k| k == "model_installed"), "no install in {kinds:?}");

    // A kind filter narrows the records but still pages the cursor.
    let (status, body) =
        odin_telemetry::http::get(addr, "/events?kind=drift&limit=1000").expect("filtered");
    assert!(status.contains("200"), "{status}");
    let filtered = json_strs(&body, "kind");
    assert!(!filtered.is_empty());
    assert!(filtered.iter().all(|k| k == "drift_detected"), "{filtered:?}");
    let drained = json_str(&body, "cursor");
    assert_eq!(drained, cursor, "full filtered read must land on the drained cursor");

    let (status, _) = odin_telemetry::http::get(addr, "/events?cursor=zap").expect("bad cursor");
    assert!(status.contains("400"), "{status}");
    let (status, _) = odin_telemetry::http::get(addr, "/events?kind=zap").expect("bad kind");
    assert!(status.contains("400"), "{status}");

    // /flight serves the merged live flight recorder as a Chrome trace.
    let (status, body) = odin_telemetry::http::get(addr, "/flight").expect("flight");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"traceEvents\""), "{body}");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A long-poll on the single-pipeline exposition server parks until
/// new sealed records land, then returns them (instead of returning
/// empty immediately or timing out the connection).
#[test]
fn events_long_poll_waits_for_new_records() {
    let dir = scratch("longpoll");
    let mut rng = StdRng::seed_from_u64(0);
    let teacher = Detector::heavy(48, &mut rng);
    let mut odin = Odin::new(Box::new(HistogramEncoder::new()), teacher, quick_cfg(), 42);
    odin.telemetry().clear_sinks();
    odin.enable_store(&dir, CheckpointPolicy::Manual).expect("enable_store");
    let server = odin.telemetry().serve("127.0.0.1:0").expect("bind");
    let addr = server.addr();

    let gen = SceneGen::new(48);
    let frames = gen.subset_frames(&mut StdRng::seed_from_u64(7), Subset::Day, 20);
    for f in &frames[..4] {
        odin.process(f);
    }
    odin.flush_store();
    let (status, body) = odin_telemetry::http::get(addr, "/events").expect("drain");
    assert!(status.contains("200"), "{status}");
    let cursor = json_str(&body, "cursor");
    assert!(!json_u64s(&body, "seq").is_empty(), "first read must see the flushed prefix");

    std::thread::scope(|s| {
        s.spawn(|| {
            std::thread::sleep(Duration::from_millis(250));
            for f in &frames[4..] {
                odin.process(f);
            }
            odin.flush_store();
        });
        let started = Instant::now();
        let path = format!("/events?cursor={cursor}&wait_ms=2000");
        let (status, body) = odin_telemetry::http::get(addr, &path).expect("long poll");
        assert!(status.contains("200"), "{status}");
        let seqs = json_u64s(&body, "seq");
        assert!(!seqs.is_empty(), "long poll returned empty: {body}");
        assert!(
            started.elapsed() >= Duration::from_millis(200),
            "records were not supposed to exist before the writer thread ran"
        );
    });

    // /flight also works on the single-pipeline server.
    let (status, body) = odin_telemetry::http::get(addr, "/flight").expect("flight");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"traceEvents\""), "{body}");
    std::fs::remove_dir_all(&dir).ok();
}

/// A reader chasing a live writer sees every record exactly once, in
/// order, and never a torn one — the writer's in-progress segment is
/// invisible until its CRC frame is complete.
#[test]
fn tail_chases_a_live_writer_without_torn_or_skipped_records() {
    let dir = scratch("chase");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("events.odlg");
    const TOTAL: u64 = 400;
    let cfg =
        EventLogConfig { enabled: true, queue_cap: 4096, segment_records: 8, ..Default::default() };
    std::thread::scope(|s| {
        s.spawn(|| {
            let w = LogWriter::open(&path, cfg, LogMetrics::detached()).unwrap();
            for seq in 1..=TOTAL {
                assert!(w.append(rec(seq)), "queue full");
                if seq % 25 == 0 {
                    w.flush().unwrap();
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            w.flush().unwrap();
        });
        let mut cursor = Cursor::default();
        let mut seen: Vec<u64> = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(30);
        while (seen.last().copied().unwrap_or(0)) < TOTAL {
            assert!(Instant::now() < deadline, "reader never caught up: {} seen", seen.len());
            let batch = read_after(&path, cursor, 64).expect("read_after");
            cursor = batch.next;
            seen.extend(batch.records.iter().map(|r| r.seq));
        }
        assert_eq!(seen, (1..=TOTAL).collect::<Vec<u64>>());
    });
    std::fs::remove_dir_all(&dir).ok();
}

/// A cursor taken before a writer shutdown keeps working after the
/// process "restarts" (a new writer on the same file): the resumed
/// read returns exactly the records appended after the cursor.
#[test]
fn cursor_survives_writer_restart() {
    let dir = scratch("restart");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("events.odlg");
    let cfg =
        EventLogConfig { enabled: true, queue_cap: 256, segment_records: 8, ..Default::default() };
    {
        let w = LogWriter::open(&path, cfg, LogMetrics::detached()).unwrap();
        for seq in 1..=40u64 {
            assert!(w.append(rec(seq)));
        }
        w.flush().unwrap();
    }
    let batch = read_after(&path, Cursor::default(), 1000).expect("first read");
    assert_eq!(batch.records.len(), 40);
    let resumed = Cursor::parse(&batch.next.to_string()).expect("cursor round-trips as text");

    let w = LogWriter::open(&path, cfg, LogMetrics::detached()).unwrap();
    assert_eq!(w.recovered_last_seq(), 40, "restart must resume the sequence");
    for seq in 41..=60u64 {
        assert!(w.append(rec(seq)));
    }
    w.flush().unwrap();
    drop(w);

    let batch = read_after(&path, resumed, 1000).expect("resumed read");
    let seqs: Vec<u64> = batch.records.iter().map(|r| r.seq).collect();
    assert_eq!(seqs, (41..=60).collect::<Vec<u64>>());
    std::fs::remove_dir_all(&dir).ok();
}

/// Byte-budget retention drops exactly the oldest sealed segments:
/// the survivors scan with correct [`ScanStats`], zone-map pruning
/// still works on the retained suffix, and the newest records are
/// byte-for-byte intact.
#[test]
fn retention_keeps_scan_log_consistent_on_the_retained_suffix() {
    let dir = scratch("retention");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("events.odlg");
    let unlimited =
        EventLogConfig { enabled: true, queue_cap: 1024, segment_records: 8, ..Default::default() };
    {
        let w = LogWriter::open(&path, unlimited, LogMetrics::detached()).unwrap();
        for seq in 1..=96u64 {
            let mut r = rec(seq);
            // Alternate kinds so zone-map pruning has something to cut.
            if seq % 8 == 0 {
                r.kind = RecordKind::DriftDetected;
            }
            assert!(w.append(r));
        }
        w.flush().unwrap();
    }
    let full = scan_log(&path, &Predicate::default()).expect("scan full");
    assert_eq!(full.records.len(), 96);
    let budget = std::fs::metadata(&path).unwrap().len() / 2;

    let compacted = EventLogConfig {
        retention: RetentionConfig { max_bytes: budget, max_age_us: 0 },
        ..unlimited
    };
    drop(LogWriter::open(&path, compacted, LogMetrics::detached()).unwrap());
    assert!(std::fs::metadata(&path).unwrap().len() <= budget, "budget not enforced");

    let after = scan_log(&path, &Predicate::default()).expect("scan compacted");
    assert!(!after.stats.torn_tail);
    assert!(after.stats.segments_total < full.stats.segments_total);
    assert_eq!(
        after.stats.segments_pruned + after.stats.segments_scanned,
        after.stats.segments_total,
        "every surviving segment is accounted for"
    );
    assert_eq!(after.stats.records_matched, after.records.len());
    // The survivors are exactly the newest suffix of the full log.
    let suffix = &full.records[full.records.len() - after.records.len()..];
    assert_eq!(after.records, suffix, "compaction altered surviving records");
    assert_eq!(after.records.last().unwrap().seq, 96);
    assert!(after.records[0].seq > 1, "nothing was dropped");

    // Zone-map pruning still cuts frame-only segments on a kind query.
    let drift =
        scan_log(&path, &Predicate { kind: Some(RecordKind::DriftDetected), ..Default::default() })
            .expect("kind scan");
    assert!(drift.records.iter().all(|r| r.kind == RecordKind::DriftDetected));
    let expect: Vec<u64> =
        suffix.iter().filter(|r| r.kind == RecordKind::DriftDetected).map(|r| r.seq).collect();
    assert_eq!(drift.records.iter().map(|r| r.seq).collect::<Vec<u64>>(), expect);

    // And the writer still appends cleanly after compaction.
    let w = LogWriter::open(&path, unlimited, LogMetrics::detached()).unwrap();
    assert_eq!(w.recovered_last_seq(), 96);
    assert!(w.append(rec(97)));
    w.flush().unwrap();
    drop(w);
    let log = read_log(&path).expect("reopen");
    assert!(!log.torn);
    std::fs::remove_dir_all(&dir).ok();
}

//! Multi-stream sharded serving: shard isolation and per-shard
//! checkpoint/restore.
//!
//! The contracts pinned here:
//!
//! * **Isolation** — a stream served through [`OdinServer`] behaves
//!   bit-identically to a standalone [`Odin`] fed the same frames with
//!   the same seed, no matter what the *other* streams are doing. Two
//!   streams with different drift schedules never cross-contaminate
//!   detectors, clusters, or models.
//! * **Restore** — a 4-stream server checkpoint restores every shard
//!   bit-identically (shared encoder/teacher sections deduped into
//!   `shared.odst`), and restoring ONE shard rolls only that shard
//!   back, leaving the others untouched.

use std::path::PathBuf;

use odin_core::encoder::HistogramEncoder;
use odin_core::pipeline::{Odin, OdinConfig};
use odin_core::server::{OdinServer, ServerConfig};
use odin_core::specializer::SpecializerConfig;
use odin_core::training::TrainingMode;
use odin_core::SHARED_SNAPSHOT_FILE;
use odin_data::{Frame, SceneGen, Subset};
use odin_detect::{Detection, Detector, DetectorArch};
use odin_drift::ManagerConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_cfg(training: TrainingMode) -> OdinConfig {
    OdinConfig {
        manager: ManagerConfig {
            min_points: 12,
            stable_window: 4,
            kl_eps: 5e-3,
            hist_hi: 8.0,
            ..ManagerConfig::default()
        },
        specializer: SpecializerConfig {
            arch: DetectorArch::Small,
            frame_size: 48,
            train_iters: 30,
            distill_iters: 20,
            batch_size: 4,
        },
        min_train_frames: 20,
        training,
        ..OdinConfig::default()
    }
}

fn server_cfg(streams: usize, training: TrainingMode) -> ServerConfig {
    ServerConfig { streams, workers: 2, queue_cap: 64, batch_max: 8, odin: quick_cfg(training) }
}

fn teacher() -> Detector {
    let mut rng = StdRng::seed_from_u64(0);
    Detector::heavy(48, &mut rng)
}

const SEED: u64 = 42;

fn new_server(cfg: ServerConfig) -> OdinServer {
    let server = OdinServer::build(cfg, |_| Box::new(HistogramEncoder::new()), teacher(), SEED);
    for i in 0..server.streams() {
        server.with_shard(i, |o| o.telemetry().clear_sinks());
    }
    server
}

/// A standalone pipeline configured exactly like server shard `stream`
/// (same teacher weights, same per-shard seed, inline training).
fn standalone_shard(stream: usize, training: TrainingMode) -> Odin {
    let odin = Odin::new(
        Box::new(HistogramEncoder::new()),
        teacher(),
        quick_cfg(training),
        SEED.wrapping_add(stream as u64),
    );
    odin.telemetry().clear_sinks();
    odin
}

fn stream_frames(subset: Subset, seed: u64, n: usize) -> Vec<Frame> {
    let gen = SceneGen::new(48);
    let mut rng = StdRng::seed_from_u64(seed);
    gen.subset_frames(&mut rng, subset, n)
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("odin-mstream-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn fingerprint(dets: &[Detection]) -> Vec<(u32, usize, u32, u32, u32, u32)> {
    dets.iter()
        .map(|d| {
            (
                d.score.to_bits(),
                d.bbox.class.index(),
                d.bbox.x.to_bits(),
                d.bbox.y.to_bits(),
                d.bbox.w.to_bits(),
                d.bbox.h.to_bits(),
            )
        })
        .collect()
}

/// Per-shard model parameters, keyed by LOCAL cluster id (resolved
/// through the shard's namespace in whatever registry it is attached
/// to — shared for server shards, private for standalone pipelines).
fn shard_params(odin: &Odin) -> Vec<(usize, Vec<f32>)> {
    let registry = odin.registry();
    let registry = registry.read();
    odin.model_ids()
        .into_iter()
        .map(|id| {
            (id, registry.get(odin.ns_base() + id).expect("registered").detector.export_params())
        })
        .collect()
}

/// Round-robin two streams' frames through the server, returning each
/// stream's results in order. Interleaving exercises the shared worker
/// partition; per-shard FIFO makes the interleaving invisible.
fn serve_interleaved(
    server: &OdinServer,
    frames: &[Vec<Frame>],
) -> Vec<Vec<odin_core::FrameResult>> {
    let mut out: Vec<Vec<odin_core::FrameResult>> = frames.iter().map(|_| Vec::new()).collect();
    let longest = frames.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..longest {
        for (stream, stream_frames) in frames.iter().enumerate() {
            if let Some(f) = stream_frames.get(i) {
                out[stream].push(server.process(stream, f.clone()).expect("admitted"));
            }
        }
    }
    out
}

const SUBSETS: [Subset; 4] = [Subset::Day, Subset::Night, Subset::Rain, Subset::Snow];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Two concurrently-served streams with different (arbitrary) drift
    /// schedules each behave bit-identically to a standalone pipeline:
    /// same detections, same serving path, same trained models. Drift
    /// on one stream never leaks into the other's shard.
    #[test]
    fn shards_never_cross_contaminate(
        sub_a in 0usize..4,
        sub_b in 0usize..4,
        seed_a in 1u64..500,
        seed_b in 500u64..1000,
    ) {
        let frames = vec![
            stream_frames(SUBSETS[sub_a], seed_a, 40),
            stream_frames(SUBSETS[sub_b], seed_b, 40),
        ];
        let server = new_server(server_cfg(2, TrainingMode::Inline));
        let served = serve_interleaved(&server, &frames);

        for stream in 0..2 {
            let mut solo = standalone_shard(stream, TrainingMode::Inline);
            let solo_res = solo.process_stream(&frames[stream]);
            prop_assert_eq!(solo_res.len(), served[stream].len());
            for (a, b) in solo_res.iter().zip(&served[stream]) {
                prop_assert_eq!(a.served_by, b.served_by, "ServedBy diverged on stream {}", stream);
                prop_assert_eq!(&a.assignment, &b.assignment);
                prop_assert_eq!(fingerprint(&a.detections), fingerprint(&b.detections));
            }
            let shard_p = server.with_shard(stream, |o| shard_params(o));
            prop_assert_eq!(shard_p, shard_params(&solo), "models diverged on stream {}", stream);
            let (solo_mem, shard_mem) = (
                solo.memory_bytes(),
                server.with_shard(stream, |o| o.memory_bytes()),
            );
            prop_assert_eq!(shard_mem, solo_mem);
        }
    }
}

/// The shared registry holds every shard's models under disjoint
/// namespaces; the shards' local views are disjoint projections.
#[test]
fn shared_registry_partitions_by_namespace() {
    let frames = vec![stream_frames(Subset::Night, 7, 60), stream_frames(Subset::Day, 8, 60)];
    let server = new_server(server_cfg(2, TrainingMode::Inline));
    serve_interleaved(&server, &frames);

    let m0 = server.with_shard(0, |o| o.model_count());
    let m1 = server.with_shard(1, |o| o.model_count());
    assert!(m0 > 0, "stream 0 trained no model");
    assert!(m1 > 0, "stream 1 trained no model");
    // Both shards' models live in ONE registry, totals add up...
    assert_eq!(server.registry().read().len(), m0 + m1);
    // ...and each shard sees only its own namespace.
    let ids0 = server.with_shard(0, |o| o.model_ids());
    let ids1 = server.with_shard(1, |o| o.model_ids());
    assert!(ids0.iter().all(|id| *id < odin_core::NS_STRIDE));
    assert!(ids1.iter().all(|id| *id < odin_core::NS_STRIDE));
}

/// Background training through the shared router converges every shard
/// to the same models as inline training: jobs fan into one pool, but
/// results route back only to the submitting shard.
#[test]
fn shared_training_pool_routes_models_to_their_shard() {
    let frames = vec![stream_frames(Subset::Night, 7, 60), stream_frames(Subset::Day, 8, 60)];
    let server = new_server(server_cfg(2, TrainingMode::Background { workers: 2 }));
    serve_interleaved(&server, &frames);
    server.finish_training();

    for (stream, stream_frames) in frames.iter().enumerate() {
        let mut solo = standalone_shard(stream, TrainingMode::Inline);
        solo.process_stream(stream_frames);
        solo.finish_training();
        assert!(solo.model_count() > 0, "fixture trained no model");
        assert_eq!(
            server.with_shard(stream, |o| shard_params(o)),
            shard_params(&solo),
            "background-trained models diverged on stream {stream}"
        );
    }
}

/// `checkpoint_all` + `restore_from_dir`: every shard of a 4-stream
/// server restores bit-identically (models, memory, inference), with
/// the encoder/teacher deduped into one `shared.odst`.
#[test]
fn four_stream_checkpoint_restores_every_shard_bit_identically() {
    let dir = scratch("restore-all");
    let subsets = [Subset::Night, Subset::Day, Subset::Rain, Subset::Snow];
    let frames: Vec<Vec<Frame>> =
        subsets.iter().enumerate().map(|(i, s)| stream_frames(*s, 20 + i as u64, 60)).collect();
    let cfg = server_cfg(4, TrainingMode::Inline);
    let server = new_server(cfg);
    serve_interleaved(&server, &frames);
    server.drain();
    server.checkpoint_all(&dir).expect("checkpoint_all");
    assert!(dir.join(SHARED_SNAPSHOT_FILE).exists(), "shared sections were not deduped");

    let restored = OdinServer::restore_from_dir(&dir, cfg).expect("restore");
    let probe = stream_frames(Subset::Day, 99, 5);
    for stream in 0..4 {
        assert_eq!(
            restored.with_shard(stream, |o| shard_params(o)),
            server.with_shard(stream, |o| shard_params(o)),
            "stream {stream} models diverged after restore"
        );
        assert_eq!(
            restored.with_shard(stream, |o| o.memory_bytes()),
            server.with_shard(stream, |o| o.memory_bytes()),
        );
        for f in &probe {
            assert_eq!(
                restored.with_shard(stream, |o| fingerprint(&o.infer_only(f))),
                server.with_shard(stream, |o| fingerprint(&o.infer_only(f))),
                "stream {stream} inference diverged after restore"
            );
        }
    }
    // The dedup actually happened: no shard snapshot embeds the
    // encoder/teacher sections, so each is far smaller than shared.odst
    // (the teacher dominates both).
    let shared_len = std::fs::metadata(dir.join(SHARED_SNAPSHOT_FILE)).unwrap().len();
    for stream in 0..4 {
        let snap = dir.join("streams").join(stream.to_string()).join("snapshot.odst");
        let len = std::fs::metadata(&snap).expect("shard snapshot").len();
        assert!(
            len < shared_len,
            "stream {stream} snapshot ({len} B) should be smaller than shared.odst ({shared_len} B)"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Per-shard store files never clobber each other: with a store (and
/// the event log) attached, every shard keeps its WAL, event log, and
/// flight-recorder auto-dump under its own `streams/<id>/` directory,
/// and nothing lands at the store root where a second shard could
/// overwrite it.
#[test]
fn store_files_are_namespaced_per_shard() {
    use odin_core::{EventLogConfig, EVENT_LOG_FILE, FLIGHT_FILE, WAL_FILE};

    let dir = scratch("namespaced");
    let mut cfg = server_cfg(2, TrainingMode::Inline);
    cfg.odin.event_log = EventLogConfig::enabled();
    let frames = vec![stream_frames(Subset::Night, 7, 60), stream_frames(Subset::Day, 8, 60)];
    let server = new_server(cfg);
    server.enable_store(&dir, odin_core::CheckpointPolicy::Manual).expect("enable_store");
    serve_interleaved(&server, &frames);
    server.drain();
    for i in 0..2 {
        server.with_shard(i, |o| o.flush_store());
    }

    for stream in 0..2 {
        let sdir = dir.join("streams").join(stream.to_string());
        for file in [WAL_FILE, EVENT_LOG_FILE, FLIGHT_FILE] {
            assert!(
                sdir.join(file).exists(),
                "stream {stream} is missing {file} in its namespace directory"
            );
        }
    }
    // Nothing shard-specific at the root: a clobber would show up here.
    for file in [WAL_FILE, EVENT_LOG_FILE, FLIGHT_FILE] {
        assert!(!dir.join(file).exists(), "{file} leaked to the store root");
    }
    // The two shards really wrote distinct logs (different drift
    // schedules => different contents), not one file twice.
    let log0 = std::fs::read(dir.join("streams/0").join(EVENT_LOG_FILE)).unwrap();
    let log1 = std::fs::read(dir.join("streams/1").join(EVENT_LOG_FILE)).unwrap();
    assert_ne!(log0, log1, "shards shared one event log");
    std::fs::remove_dir_all(&dir).ok();
}

/// `restore_shard` rolls ONE stream back to the checkpoint while the
/// other keeps its post-checkpoint state — targeted recovery after a
/// bad model lands on one camera.
#[test]
fn restoring_one_shard_leaves_the_other_untouched() {
    let dir = scratch("restore-one");
    // Stream 0's concept straddles the checkpoint: only 8 of its Night
    // frames land before the snapshot (short of `min_points`), so its
    // cluster promotes — and its model trains — entirely afterwards.
    // Stream 1 learns its concept entirely before the checkpoint.
    let night = stream_frames(Subset::Night, 7, 60);
    let early = vec![night[..8].to_vec(), stream_frames(Subset::Day, 8, 60)];
    let late = vec![night[8..].to_vec(), stream_frames(Subset::Day, 10, 10)];
    let server = new_server(server_cfg(2, TrainingMode::Inline));
    serve_interleaved(&server, &early);
    server.drain();
    server.checkpoint_all(&dir).expect("checkpoint_all");
    let at_ckpt: Vec<_> = (0..2).map(|s| server.with_shard(s, |o| shard_params(o))).collect();
    assert!(at_ckpt[0].is_empty(), "fixture: stream 0 must not have trained yet");

    serve_interleaved(&server, &late);
    server.drain();
    let after: Vec<_> = (0..2).map(|s| server.with_shard(s, |o| shard_params(o))).collect();
    assert_ne!(at_ckpt[0], after[0], "fixture: stream 0 should have learned post-checkpoint");

    server.restore_shard(0, &dir).expect("restore shard 0");
    // Stream 0 is back at the checkpoint; stream 1 still has its
    // post-checkpoint models, in the shared registry and in its view.
    assert_eq!(server.with_shard(0, |o| shard_params(o)), at_ckpt[0]);
    assert_eq!(server.with_shard(1, |o| shard_params(o)), after[1]);
    let m0 = server.with_shard(0, |o| o.model_count());
    let m1 = server.with_shard(1, |o| o.model_count());
    assert_eq!(server.registry().read().len(), m0 + m1, "stale namespace entries survived");

    // The rolled-back shard still serves (and can learn again).
    let probe = stream_frames(Subset::Day, 99, 3);
    for f in &probe {
        server.process(0, f.clone()).expect("restored shard serves");
        server.process(1, f.clone()).expect("untouched shard serves");
    }
    std::fs::remove_dir_all(&dir).ok();
}

//! Property-based tests across crate boundaries: generated data must
//! satisfy the contracts the detection and drift layers rely on.

use odin_core::selector::{select, SelectionPolicy};
use odin_data::{Condition, SceneGen, Subset, TimeOfDay, Weather};
use odin_detect::{build_targets, decode, nms, HEAD_CHANNELS};
use odin_drift::{ClusterManager, DeltaBand, ManagerConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_condition() -> impl Strategy<Value = Condition> {
    (0usize..5, 0usize..3).prop_map(|(w, t)| Condition::new(Weather::ALL[w], TimeOfDay::ALL[t]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generated frame yields boxes that the detection head can
    /// encode, and the encoded targets stay in range.
    #[test]
    fn generated_frames_encode_to_valid_targets(seed in 0u64..500, cond in arb_condition()) {
        let gen = SceneGen::new(48);
        let mut rng = StdRng::seed_from_u64(seed);
        let frame = gen.frame(&mut rng, cond);
        let boxes: Vec<&[odin_data::GtBox]> = vec![frame.boxes.as_slice()];
        let t = build_targets(&boxes, 6, 48);
        prop_assert_eq!(t.shape(), &[1, HEAD_CHANNELS, 6, 6]);
        prop_assert!(t.min() >= 0.0);
        prop_assert!(t.max() <= 1.0);
        // Pixel values always normalized.
        prop_assert!(frame.image.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Decoding any finite prediction tensor yields in-range boxes, and
    /// NMS never increases the detection count.
    #[test]
    fn decode_then_nms_is_contractive(seed in 0u64..200) {
        let mut vals = Vec::with_capacity(HEAD_CHANNELS * 36);
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for _ in 0..HEAD_CHANNELS * 36 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            vals.push(((state >> 33) as f32 / u32::MAX as f32 - 0.5) * 8.0);
        }
        let pred = odin_tensor::Tensor::from_vec(vals, &[1, HEAD_CHANNELS, 6, 6]);
        let dets = decode(&pred, 48, 0.3).pop().expect("one frame");
        for d in &dets {
            prop_assert!(d.bbox.w > 0.0 && d.bbox.h > 0.0);
            prop_assert!(d.score >= 0.0 && d.score <= 1.0);
        }
        let kept = nms(dets.clone(), 0.45);
        prop_assert!(kept.len() <= dets.len());
    }

    /// Selection weights are a distribution for every policy, for any
    /// probe point, as soon as clusters exist.
    #[test]
    fn selector_weights_normalize(probe in prop::collection::vec(-20.0f32..20.0, 6)) {
        let cfg = ManagerConfig { min_points: 15, stable_window: 4, kl_eps: 5e-3, ..ManagerConfig::default() };
        let mut m = ClusterManager::new(cfg);
        for (salt, center) in [(0usize, 0.0f32), (1, 9.0)] {
            let pts: Vec<Vec<f32>> = (0..80)
                .map(|i| (0..6).map(|j| center + ((i * 7 + j * 13 + salt) as f32).sin()).collect())
                .collect();
            m.bootstrap(&pts);
        }
        prop_assume!(m.clusters().len() >= 2);
        for policy in [
            SelectionPolicy::KnnUnweighted(2),
            SelectionPolicy::KnnWeighted(2),
            SelectionPolicy::DeltaBand,
            SelectionPolicy::MostRecent,
        ] {
            let s = select(policy, &m, &probe);
            prop_assert!(!s.is_empty());
            let total: f32 = s.models.iter().map(|x| x.1).sum();
            prop_assert!((total - 1.0).abs() < 1e-4, "{:?} weights sum to {}", policy, total);
            prop_assert!(s.models.iter().all(|x| x.1 >= 0.0));
        }
    }

    /// Δ-bands fitted on latents from any subset satisfy Equation 1.
    #[test]
    fn bands_on_frame_brightness_hold_mass(seed in 0u64..100, subset_idx in 0usize..5) {
        let gen = SceneGen::new(32);
        let mut rng = StdRng::seed_from_u64(seed);
        let frames = gen.subset_frames(&mut rng, Subset::ALL[subset_idx], 30);
        // 1-D latent: mean brightness.
        let centroid: f32 = frames.iter().map(|f| f.image.mean_brightness()).sum::<f32>() / 30.0;
        let distances: Vec<f32> =
            frames.iter().map(|f| (f.image.mean_brightness() - centroid).abs()).collect();
        let band = DeltaBand::fit(&distances, 0.75);
        prop_assert!(band.mass(&distances) >= 0.75);
    }
}

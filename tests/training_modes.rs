//! Inline and background SPECIALIZER scheduling must converge to the
//! same system: training jobs carry their own seeds, so moving them off
//! the serving thread may only change *when* a model lands, never what
//! it is.

use odin_core::encoder::HistogramEncoder;
use odin_core::pipeline::{Odin, OdinConfig};
use odin_core::specializer::SpecializerConfig;
use odin_core::training::TrainingMode;
use odin_core::ModelKind;
use odin_data::{SceneGen, Subset};
use odin_detect::{Detector, DetectorArch};
use odin_drift::ManagerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_cfg(training: TrainingMode) -> OdinConfig {
    OdinConfig {
        manager: ManagerConfig {
            min_points: 12,
            stable_window: 4,
            kl_eps: 5e-3,
            hist_hi: 8.0,
            ..ManagerConfig::default()
        },
        specializer: SpecializerConfig {
            arch: DetectorArch::Small,
            frame_size: 48,
            train_iters: 30,
            distill_iters: 20,
            batch_size: 4,
        },
        min_train_frames: 20,
        training,
        ..OdinConfig::default()
    }
}

/// Runs the same two-concept stream and returns the promoted cluster
/// ids, the registered model ids and kinds, and every model's exported
/// parameters.
#[allow(clippy::type_complexity)]
fn run(training: TrainingMode) -> (Vec<usize>, Vec<(usize, ModelKind)>, Vec<Vec<f32>>) {
    let mut rng = StdRng::seed_from_u64(0);
    let teacher = Detector::heavy(48, &mut rng);
    let mut odin = Odin::new(Box::new(HistogramEncoder::new()), teacher, quick_cfg(training), 42);
    let gen = SceneGen::new(48);
    let mut stream_rng = StdRng::seed_from_u64(2);
    odin.process_stream(&gen.subset_frames(&mut stream_rng, Subset::Night, 60));
    odin.process_stream(&gen.subset_frames(&mut stream_rng, Subset::Day, 60));
    odin.finish_training();
    let events: Vec<usize> = odin.manager().events().iter().map(|e| e.cluster_id).collect();
    let models: Vec<(usize, ModelKind)> = odin
        .model_ids()
        .into_iter()
        .map(|id| (id, odin.model_kind(id).expect("registered model has a kind")))
        .collect();
    let registry = odin.registry();
    let registry = registry.read();
    let params: Vec<Vec<f32>> = odin
        .model_ids()
        .into_iter()
        .map(|id| registry.get(id).expect("registered").detector.export_params())
        .collect();
    (events, models, params)
}

/// The headline determinism claim: the same stream under `Inline` and
/// under `Background {{ workers: 1 }}` + drain barrier produces the same
/// cluster ids, the same model kinds, and bit-identical model weights.
#[test]
fn inline_and_background_converge_to_identical_systems() {
    let (ev_inline, models_inline, params_inline) = run(TrainingMode::Inline);
    let (ev_bg, models_bg, params_bg) = run(TrainingMode::Background { workers: 1 });
    assert!(!models_inline.is_empty(), "fixture trained no models");
    assert_eq!(ev_inline, ev_bg, "cluster promotion sequence diverged");
    assert_eq!(models_inline, models_bg, "model ids/kinds diverged");
    assert_eq!(params_inline, params_bg, "model weights diverged");
}

/// Multiple workers may reorder completions, but the installed system
/// keyed by cluster id must still match inline training.
#[test]
fn multi_worker_pool_matches_inline() {
    let (_, models_inline, params_inline) = run(TrainingMode::Inline);
    let (_, models_bg, params_bg) = run(TrainingMode::Background { workers: 3 });
    assert_eq!(models_inline, models_bg);
    assert_eq!(params_inline, params_bg);
}

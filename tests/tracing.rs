//! Causal-tracing contracts: one trace links a recovery arc across the
//! training-pool thread boundary (drift detected → job queued → worker
//! train → registry install), the Chrome-trace export is byte-identical
//! at any `ODIN_THREADS` and across checkpoint/restore (given a manual
//! clock), warm restarts are marked on the timeline, and the flight
//! recorder auto-dumps next to the store on drift.

use std::path::PathBuf;
use std::sync::Arc;

use odin_core::encoder::HistogramEncoder;
use odin_core::pipeline::{Odin, OdinConfig};
use odin_core::specializer::SpecializerConfig;
use odin_core::training::TrainingMode;
use odin_core::{CheckpointPolicy, FLIGHT_FILE};
use odin_data::{Frame, SceneGen, Subset};
use odin_detect::{Detector, DetectorArch};
use odin_drift::ManagerConfig;
use odin_telemetry::{ManualClock, TimelineStage, NO_PARENT};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_cfg(training: TrainingMode) -> OdinConfig {
    OdinConfig {
        manager: ManagerConfig {
            min_points: 12,
            stable_window: 4,
            kl_eps: 5e-3,
            hist_hi: 8.0,
            ..ManagerConfig::default()
        },
        specializer: SpecializerConfig {
            arch: DetectorArch::Small,
            frame_size: 48,
            train_iters: 30,
            distill_iters: 20,
            batch_size: 4,
        },
        min_train_frames: 20,
        training,
        ..OdinConfig::default()
    }
}

/// A fresh pipeline with a manual clock installed, so every span
/// timestamp is a pure function of the frame stream.
fn new_odin(training: TrainingMode) -> Odin {
    let mut rng = StdRng::seed_from_u64(0);
    let teacher = Detector::heavy(48, &mut rng);
    let odin = Odin::new(Box::new(HistogramEncoder::new()), teacher, quick_cfg(training), 42);
    odin.telemetry().set_clock(Arc::new(ManualClock::new()));
    odin.telemetry().clear_sinks();
    odin
}

fn night_then_day(n_each: usize) -> (Vec<Frame>, Vec<Frame>) {
    let gen = SceneGen::new(48);
    let mut rng = StdRng::seed_from_u64(2);
    (
        gen.subset_frames(&mut rng, Subset::Night, n_each),
        gen.subset_frames(&mut rng, Subset::Day, n_each),
    )
}

/// Unique scratch path per test (the suite may run in parallel).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("odin-trace-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// With background training, one trace tells the whole recovery story
/// even though the `train` span is recorded on a worker thread: the
/// `drift_detected` marker parents the `train_job_queued` marker, the
/// job carries that context across the thread hop so the worker's
/// `train` span parents onto it, and the `install` marker parents onto
/// the worker's span.
#[test]
fn background_training_keeps_one_trace_across_threads() {
    let (night, day) = night_then_day(60);
    let mut odin = new_odin(TrainingMode::Background { workers: 2 });
    odin.process_stream(&night);
    odin.process_stream(&day);
    odin.finish_training();

    let rec = odin.telemetry().flight_record();
    let spans = &rec.spans;
    let drift = spans
        .iter()
        .find(|s| s.name == "drift_detected")
        .expect("no drift_detected marker recorded");
    assert_eq!(drift.parent, NO_PARENT, "drift marker should root its recovery trace");
    assert!(drift.cluster >= 0, "drift marker should carry its cluster");

    let queued = spans
        .iter()
        .find(|s| s.name == "train_job_queued" && s.parent == drift.id)
        .expect("no train_job_queued marker parented on the drift marker");
    let train = spans
        .iter()
        .find(|s| s.name == "train" && s.parent == queued.id)
        .expect("no worker train span parented on the queued marker");
    let install = spans
        .iter()
        .find(|s| s.name == "install" && s.parent == train.id)
        .expect("no install marker parented on the worker train span");

    for (what, s) in [("queued", queued), ("train", train), ("install", install)] {
        assert_eq!(s.trace, drift.trace, "{what} span left the recovery trace");
    }
    assert_eq!(train.cluster, drift.cluster, "train span tagged with the wrong cluster");
    assert!(train.duration_ms() >= 0.0);
    assert!(
        install.frame >= drift.frame,
        "model installed at frame {} before drift at frame {}",
        install.frame,
        drift.frame
    );
}

/// The Chrome-trace export is byte-identical when the same stream runs
/// on one worker thread vs two: span/trace ids come from sequential
/// counters, timestamps from the manual clock, and emission order from
/// the (single-threaded) serving loop.
#[test]
fn chrome_trace_is_identical_across_thread_counts() {
    let (night, day) = night_then_day(50);

    let render_with = |threads: usize| {
        odin_tensor::par::set_num_threads(threads);
        let mut odin = new_odin(TrainingMode::Inline);
        odin.process_stream(&night);
        odin.process_stream(&day);
        odin.telemetry().render_chrome_trace()
    };

    let trace1 = render_with(1);
    let trace2 = render_with(2);
    assert_eq!(trace1, trace2, "chrome trace depends on thread count");
    assert!(trace1.contains("\"traceEvents\":["));
    assert!(trace1.contains("\"name\":\"drift_detected\""), "no drift marker in the export");
}

/// A checkpoint carries the flight recorder and the tracer's id
/// allocators, so a restored pipeline serving the same remaining stream
/// exports byte-for-byte the same Chrome trace — and a plain restore
/// stays unmarked (no `RestoreCompleted` on the timeline).
#[test]
fn chrome_trace_survives_checkpoint_restore() {
    let path = scratch("trace-roundtrip").join("snap.odst");
    let (night, day) = night_then_day(60);

    let mut original = new_odin(TrainingMode::Inline);
    original.process_stream(&night);
    original.checkpoint(&path).expect("checkpoint");
    original.process_stream(&day);

    let restored = Odin::restore(&path).expect("restore");
    restored.telemetry().set_clock(Arc::new(ManualClock::new()));
    restored.telemetry().clear_sinks();
    let mut restored = restored;
    restored.process_stream(&day);

    assert_eq!(
        original.telemetry().render_chrome_trace(),
        restored.telemetry().render_chrome_trace(),
        "chrome trace diverged across checkpoint/restore"
    );
    assert!(
        !restored.telemetry().timeline().iter().any(|t| t.stage == TimelineStage::RestoreCompleted),
        "plain Odin::restore must not mark the timeline (byte-identity contract)"
    );
}

/// A warm restart from the store directory is observable: the timeline
/// gains a `RestoreCompleted` marker and the flight recorder an
/// info-level store event describing the WAL replay.
#[test]
fn warm_restart_is_marked_on_the_timeline() {
    let dir = scratch("warm-restart");
    let (night, _) = night_then_day(40);

    let mut odin = new_odin(TrainingMode::Inline);
    odin.enable_store(&dir, CheckpointPolicy::EveryNFrames(10)).expect("enable store");
    odin.process_stream(&night);
    odin.flush_store();
    drop(odin);

    let restored = Odin::restore_from_dir(&dir).expect("warm restart");
    let timeline = restored.telemetry().timeline();
    assert!(
        timeline.iter().any(|t| t.stage == TimelineStage::RestoreCompleted),
        "no RestoreCompleted marker after restore_from_dir"
    );
    let rec = restored.telemetry().flight_record();
    assert!(
        rec.events.iter().any(|e| e.target == "store" && e.message.contains("warm restart")),
        "no store event describing the warm restart"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Drift events auto-dump the flight recorder next to the store, and an
/// on-demand dump writes exactly what the in-memory export renders.
#[test]
fn flight_record_dumps_on_drift_and_on_demand() {
    let dir = scratch("autodump");
    let (night, day) = night_then_day(60);

    let mut odin = new_odin(TrainingMode::Inline);
    odin.enable_store(&dir, CheckpointPolicy::EveryNFrames(30)).expect("enable store");
    odin.process_stream(&night);
    odin.process_stream(&day);
    odin.flush_store();

    let auto = std::fs::read_to_string(dir.join(FLIGHT_FILE))
        .expect("drift did not auto-dump the flight record");
    assert!(auto.starts_with("{\"displayTimeUnit\":\"ms\""), "auto-dump is not a chrome trace");
    assert!(auto.contains("\"name\":\"drift_detected\""), "auto-dump misses the drift marker");

    let on_demand = dir.join("manual-dump.json");
    odin.dump_flight_record(&on_demand).expect("on-demand dump");
    assert_eq!(
        std::fs::read_to_string(&on_demand).expect("read dump"),
        odin.telemetry().render_chrome_trace(),
        "on-demand dump diverges from the in-memory export"
    );
    std::fs::remove_dir_all(&dir).ok();
}

//! Multi-stream sharded serving quickstart: one `OdinServer`, four
//! camera streams, one HTTP ingest/exposition front end.
//!
//! Builds a 4-shard server (per-stream drift detectors and telemetry,
//! one shared model registry and training pool), pushes a short
//! two-concept stream through every shard, and prints the per-stream
//! metrics. With `ODIN_SERVE_MS=<n>` the process then serves HTTP for
//! n ms so the endpoints can be scraped:
//!
//! ```text
//! POST /ingest/<stream>  (body: odin_core::encode_ingest_frame)
//! GET  /metrics          every sample labeled {stream="<id>"}
//! GET  /healthz          liveness + per-stream queue depths
//! GET  /trace            merged Chrome trace, spans grouped per stream
//! ```
//!
//! Run: `cargo run --release --example multistream_server`

use odin_core::encoder::HistogramEncoder;
use odin_core::pipeline::OdinConfig;
use odin_core::server::{OdinServer, ServerConfig};
use odin_core::specializer::SpecializerConfig;
use odin_core::{CheckpointPolicy, EventLogConfig};
use odin_data::{SceneGen, Subset};
use odin_detect::{Detector, DetectorArch};
use odin_drift::ManagerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = ServerConfig {
        streams: 4,
        workers: 2,
        queue_cap: 64,
        batch_max: 8,
        odin: OdinConfig {
            manager: ManagerConfig {
                min_points: 12,
                stable_window: 4,
                kl_eps: 5e-3,
                hist_hi: 8.0,
                ..ManagerConfig::default()
            },
            specializer: SpecializerConfig {
                arch: DetectorArch::Small,
                frame_size: 48,
                train_iters: 30,
                distill_iters: 20,
                batch_size: 4,
            },
            min_train_frames: 20,
            event_log: EventLogConfig {
                enabled: true,
                queue_cap: 4096,
                segment_records: 16,
                ..Default::default()
            },
            ..OdinConfig::default()
        },
    };

    let mut rng = StdRng::seed_from_u64(0);
    let teacher = Detector::heavy(48, &mut rng);
    let mut server = OdinServer::build(cfg, |_| Box::new(HistogramEncoder::new()), teacher, 42);

    // With ODIN_STORE_DIR set, every shard persists its WAL + event log
    // under <dir>/streams/<id>/ — `odin tail --addr` (via GET /events)
    // and `odin tail --store <dir>` both read the same files.
    let store_dir = std::env::var("ODIN_STORE_DIR").ok().map(std::path::PathBuf::from);
    if let Some(dir) = &store_dir {
        server.enable_store(dir, CheckpointPolicy::Manual).expect("enable store");
    }

    // Four cameras see different condition schedules; each shard learns
    // only from its own stream.
    let gen = SceneGen::new(48);
    let subsets = [Subset::Night, Subset::Day, Subset::Rain, Subset::Snow];
    let per_stream: Vec<Vec<_>> = subsets
        .iter()
        .enumerate()
        .map(|(i, s)| gen.subset_frames(&mut StdRng::seed_from_u64(7 + i as u64), *s, 40))
        .collect();
    for tick in 0..40 {
        for (stream, frames) in per_stream.iter().enumerate() {
            let res = server.process(stream, frames[tick].clone()).expect("admitted");
            if let Some(event) = res.drift {
                println!("stream {stream}: drift detected at frame {}", event.at);
            }
        }
    }
    server.finish_training();

    for stream in 0..server.streams() {
        let (models, clusters) =
            server.with_shard(stream, |o| (o.model_count(), o.manager().clusters().len()));
        println!("stream {stream}: {clusters} cluster(s), {models} specialized model(s)");
    }

    // Seal the partial event-log segments so a tail (sealed-segment
    // reads only) sees the full detect -> install arc before serving.
    if store_dir.is_some() {
        for stream in 0..server.streams() {
            server.with_shard(stream, |o| o.flush_store());
        }
    }

    // Optional exposition window for scrape smoke tests (same contract
    // as the telemetry bench): serve HTTP for ODIN_SERVE_MS ms and
    // print the address in a stable, greppable form. While serving, one
    // client thread per stream POSTs frames through the real ingest
    // route, so a scrape during the window sees live per-stream
    // admission counters.
    if let Some(ms) = std::env::var("ODIN_SERVE_MS").ok().and_then(|v| v.parse::<u64>().ok()) {
        if ms > 0 {
            let addr = server.serve(("127.0.0.1", 0)).expect("bind ingest server");
            println!("serving multistream at http://{addr} for {ms} ms");
            use std::io::Write;
            std::io::stdout().flush().expect("flush stdout");
            let clients: Vec<_> = (0..per_stream.len())
                .map(|stream| {
                    let frames = per_stream[stream].clone();
                    std::thread::spawn(move || {
                        let mut accepted = 0usize;
                        for f in frames.iter().take(10) {
                            let body = odin_core::encode_ingest_frame(f);
                            let path = format!("/ingest/{stream}");
                            match odin_telemetry::http::post(addr, &path, &body) {
                                Ok((status, _)) if status.contains("200") => accepted += 1,
                                _ => {}
                            }
                        }
                        accepted
                    })
                })
                .collect();
            let accepted: usize = clients.into_iter().map(|c| c.join().unwrap_or(0)).sum();
            println!("http ingest: {accepted} frames accepted across {} streams", per_stream.len());
            std::io::stdout().flush().expect("flush stdout");
            // Make the ingest-era records visible to tails running
            // against the serve window.
            if store_dir.is_some() {
                server.drain();
                for stream in 0..server.streams() {
                    server.with_shard(stream, |o| o.flush_store());
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }
    server.shutdown();
}

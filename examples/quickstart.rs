//! Quickstart: run ODIN on a drifting video stream and watch it detect
//! and recover from drift.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The stream starts with night-time frames, then day-time frames are
//! mixed in — a change in P(X) that degrades any static model. ODIN
//! discovers the night cluster, trains a specialized model for it, then
//! detects the day drift and recovers with a second model.
//!
//! This example uses the fast handcrafted-feature encoder so it finishes
//! in well under a minute; the paper's DA-GAN encoder is exercised in
//! the `drift_stream` example and the bench harness.

use odin_core::encoder::HistogramEncoder;
use odin_core::pipeline::{Odin, OdinConfig};
use odin_core::specializer::SpecializerConfig;
use odin_data::{DriftSchedule, Phase, SceneGen, Subset};
use odin_detect::Detector;
use odin_drift::ManagerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let gen = SceneGen::new(48);

    // Night first, then day joins at frame 150.
    let schedule = DriftSchedule::new(
        400,
        vec![
            Phase { at_frame: 0, adds: Subset::Night },
            Phase { at_frame: 150, adds: Subset::Day },
        ],
    );
    let stream = schedule.generate(&gen, &mut rng);

    // A heavyweight "YOLO" teacher serves until specialized models exist.
    let teacher = Detector::heavy(48, &mut rng);
    let cfg = OdinConfig {
        manager: ManagerConfig {
            min_points: 20,
            stable_window: 6,
            kl_eps: 2e-3,
            ..ManagerConfig::default()
        },
        specializer: SpecializerConfig { train_iters: 250, ..SpecializerConfig::default() },
        ..OdinConfig::default()
    };
    let mut odin = Odin::new(Box::new(HistogramEncoder::new()), teacher, cfg, 0);

    println!("processing {} frames...", stream.len());
    let mut detections_total = 0usize;
    for (i, frame) in stream.iter().enumerate() {
        let result = odin.process(frame);
        detections_total += result.detections.len();
        if let Some(event) = result.drift {
            println!(
                "frame {i:>4}: DRIFT detected -> new cluster {} promoted, specialized model trained",
                event.cluster_id
            );
        }
    }

    println!();
    println!("clusters discovered : {}", odin.manager().clusters().len());
    println!("models deployed     : {}", odin.model_count());
    println!("total detections    : {detections_total}");
    println!(
        "deployed model memory: {:.1} KiB (teacher was {:.1} KiB)",
        odin.memory_bytes() as f32 / 1024.0,
        Detector::heavy(48, &mut StdRng::seed_from_u64(0)).param_bytes() as f32 / 1024.0
    );
}

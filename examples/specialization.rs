//! Model specialization (§5.2 / Figure 8 in miniature).
//!
//! ```text
//! cargo run --release --example specialization
//! ```
//!
//! Trains the three detector variants the paper compares —
//! the heavyweight YoloSim, a per-cluster YoloSpecialized, and a
//! distilled YoloLite — and reports detection accuracy on the cluster
//! they serve and on a foreign cluster, plus throughput and memory.

use odin_core::specializer::{Specializer, SpecializerConfig};
use odin_data::{SceneGen, Subset};
use odin_detect::{profile, Detector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(31);
    let gen = SceneGen::new(48);

    println!("generating DAY-DATA and NIGHT-DATA clusters...");
    let day_train = gen.subset_frames(&mut rng, Subset::Day, 200);
    let day_test = gen.subset_frames(&mut rng, Subset::Day, 60);
    let night_test = gen.subset_frames(&mut rng, Subset::Night, 60);

    println!("training heavyweight YoloSim on DAY-DATA...");
    let mut yolo = Detector::heavy(48, &mut rng);
    yolo.train_oracle(&mut rng, &day_train, 700, 8);

    let spec = Specializer::new(SpecializerConfig {
        train_iters: 700,
        distill_iters: 500,
        ..SpecializerConfig::default()
    });
    println!("training YoloSpecialized from oracle labels...");
    let mut specialized = spec.build_specialized(1, &day_train);
    println!("distilling YoloLite from the teacher (no oracle labels)...");
    let mut lite = spec.build_lite(2, &yolo, &day_train);

    println!();
    println!(
        "{:<18} {:>9} {:>11} {:>9} {:>10} {:>10}",
        "model", "mAP(day)", "mAP(night)", "params", "FPS", "size KiB"
    );
    for (name, model) in
        [("YoloSim", &mut yolo), ("YoloSpecialized", &mut specialized), ("YoloLite", &mut lite)]
    {
        let map_day = model.evaluate_map(&day_test);
        let map_night = model.evaluate_map(&night_test);
        let prof = profile(model, 64, 16);
        println!(
            "{:<18} {:>9.3} {:>11.3} {:>9} {:>10.0} {:>10.1}",
            name,
            map_day,
            map_night,
            prof.params,
            prof.fps,
            prof.bytes as f32 / 1024.0
        );
    }
    println!();
    println!("note: every model collapses on NIGHT-DATA — drift the models were");
    println!("never trained for. That is the gap ODIN's detector+specializer close.");
}

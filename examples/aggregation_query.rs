//! Aggregation queries with and without drift recovery (§6.6).
//!
//! ```text
//! cargo run --release --example aggregation_query
//! ```
//!
//! Runs `SELECT COUNT(detections) ... WHERE class='car'` over a drifting
//! stream under three systems and compares query accuracy and
//! throughput:
//!
//! * **static** — a heavyweight model trained on the first concept only,
//! * **ODIN** — specialized models per discovered cluster,
//! * **ODIN-FILTER** — ODIN plus a lightweight filter that skips frames
//!   without cars.

use std::time::Instant;

use odin_core::encoder::HistogramEncoder;
use odin_core::filter::BinaryFilter;
use odin_core::pipeline::{Odin, OdinConfig};
use odin_core::query::{count_accuracy, CountQuery};
use odin_core::specializer::SpecializerConfig;
use odin_data::{DriftSchedule, ObjectClass, Phase, SceneGen, Subset};
use odin_detect::Detector;
use odin_drift::ManagerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(21);
    let gen = SceneGen::new(48);
    let query = CountQuery::new(ObjectClass::Car);

    // Drifting workload: rain first, then clear day joins.
    let schedule = DriftSchedule::new(
        500,
        vec![Phase { at_frame: 0, adds: Subset::Rain }, Phase { at_frame: 200, adds: Subset::Day }],
    );
    let stream = schedule.generate(&gen, &mut rng);
    let truth: Vec<usize> = stream.iter().map(|f| query.ground_truth(f)).collect();

    // --- Static system: heavyweight model trained on RAIN only. ---
    let mut static_model = Detector::heavy(48, &mut rng);
    let rain_train = gen.subset_frames(&mut rng, Subset::Rain, 150);
    println!("training static heavyweight model on RAIN-DATA...");
    static_model.train_oracle(&mut rng, &rain_train, 500, 8);
    let t0 = Instant::now();
    let static_counts: Vec<usize> =
        stream.iter().map(|f| query.count(&static_model.detect(&f.image))).collect();
    let static_fps = stream.len() as f32 / t0.elapsed().as_secs_f32();

    // --- ODIN: automated drift detection and recovery. ---
    let teacher = {
        let mut t = Detector::heavy(48, &mut rng);
        t.import_params(&static_model.export_params());
        t
    };
    let cfg = OdinConfig {
        manager: ManagerConfig {
            min_points: 20,
            stable_window: 6,
            kl_eps: 2e-3,
            ..ManagerConfig::default()
        },
        specializer: SpecializerConfig { train_iters: 400, ..SpecializerConfig::default() },
        ..OdinConfig::default()
    };
    let mut odin = Odin::new(Box::new(HistogramEncoder::new()), teacher, cfg, 5);
    let t0 = Instant::now();
    let odin_counts: Vec<usize> =
        stream.iter().map(|f| query.count(&odin.process(f).detections)).collect();
    let odin_fps = stream.len() as f32 / t0.elapsed().as_secs_f32();

    // --- ODIN-FILTER: add a specialized car filter in front. ---
    let mut filter = BinaryFilter::new(ObjectClass::Car, 48, &mut rng);
    filter.train(&mut rng, &rain_train, 300, 8);
    let t0 = Instant::now();
    let mut skipped = 0usize;
    let filtered_counts: Vec<usize> = stream
        .iter()
        .map(|f| {
            if filter.pass(&f.image) {
                query.count(&odin.process(f).detections)
            } else {
                skipped += 1;
                0
            }
        })
        .collect();
    let filter_fps = stream.len() as f32 / t0.elapsed().as_secs_f32();

    println!();
    println!("SELECT COUNT(detections) FROM stream USING MODEL ... WHERE class='car'");
    println!("{:<14} {:>10} {:>10} {:>12}", "system", "query acc", "FPS", "reduction");
    println!(
        "{:<14} {:>10.3} {:>10.0} {:>12}",
        "static",
        count_accuracy(&static_counts, &truth),
        static_fps,
        "-"
    );
    println!(
        "{:<14} {:>10.3} {:>10.0} {:>12}",
        "ODIN",
        count_accuracy(&odin_counts, &truth),
        odin_fps,
        "-"
    );
    println!(
        "{:<14} {:>10.3} {:>10.0} {:>11.0}%",
        "ODIN-FILTER",
        count_accuracy(&filtered_counts, &truth),
        filter_fps,
        skipped as f32 / stream.len() as f32 * 100.0
    );
}

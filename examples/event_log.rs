//! Event log end-to-end: stream two concepts through a pipeline with
//! the log enabled, then query the log back — the same files the
//! `odin` CLI reads.
//!
//! ```text
//! cargo run --release --example event_log
//! ODIN_STORE_DIR=/tmp/store cargo run --release --example event_log
//! ```
//!
//! A manual clock is installed and advanced 1 ms per frame, so the
//! written `events.odlg` is a pure function of the frame stream —
//! running this example twice (at any `ODIN_THREADS`) produces
//! byte-identical files, which the CI smoke checks with `cmp`.

use std::sync::Arc;

use odin_core::encoder::HistogramEncoder;
use odin_core::pipeline::{Odin, OdinConfig};
use odin_core::specializer::SpecializerConfig;
use odin_core::{CheckpointPolicy, EventLogConfig, EVENT_LOG_FILE};
use odin_data::{SceneGen, Subset};
use odin_detect::{Detector, DetectorArch};
use odin_drift::ManagerConfig;
use odin_log::{scan_log, Predicate, RecordKind};
use odin_telemetry::ManualClock;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let store_dir = match std::env::var_os("ODIN_STORE_DIR") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("odin-event-log-{}", std::process::id())),
    };
    std::fs::remove_dir_all(&store_dir).ok();

    let mut rng = StdRng::seed_from_u64(0);
    let teacher = Detector::heavy(48, &mut rng);
    let cfg = OdinConfig {
        manager: ManagerConfig {
            min_points: 12,
            stable_window: 4,
            kl_eps: 5e-3,
            hist_hi: 8.0,
            ..ManagerConfig::default()
        },
        specializer: SpecializerConfig {
            arch: DetectorArch::Small,
            frame_size: 48,
            train_iters: 30,
            distill_iters: 20,
            batch_size: 4,
        },
        min_train_frames: 20,
        // Small segments so even this short run exercises zone-map
        // pruning across several of them.
        event_log: EventLogConfig {
            enabled: true,
            queue_cap: 4096,
            segment_records: 32,
            ..Default::default()
        },
        ..OdinConfig::default()
    };
    let mut odin = Odin::new(Box::new(HistogramEncoder::new()), teacher, cfg, 42);
    let clock = Arc::new(ManualClock::new());
    odin.telemetry().set_clock(clock.clone());
    odin.enable_store(&store_dir, CheckpointPolicy::Manual).expect("enable store");

    let gen = SceneGen::new(48);
    let mut rng = StdRng::seed_from_u64(2);
    let night = gen.subset_frames(&mut rng, Subset::Night, 60);
    let day = gen.subset_frames(&mut rng, Subset::Day, 60);
    println!("streaming {} frames with the event log at {}", 120, store_dir.display());
    for f in night.iter().chain(&day) {
        odin.process(f);
        clock.advance_ms(1.0);
    }
    odin.flush_store();

    let log_path = store_dir.join(EVENT_LOG_FILE);
    let all = scan_log(&log_path, &Predicate::default()).expect("scan");
    println!(
        "log contains {} records in {} segments ({} bytes)",
        all.records.len(),
        all.stats.segments_total,
        std::fs::metadata(&log_path).map(|m| m.len()).unwrap_or(0),
    );

    // The recovery arcs, exactly as `odin explain` joins them.
    for kind in [RecordKind::DriftDetected, RecordKind::TrainQueued, RecordKind::ModelInstalled] {
        let res = scan_log(&log_path, &Predicate { kind: Some(kind), ..Default::default() })
            .expect("scan kind");
        for r in &res.records {
            match kind {
                RecordKind::DriftDetected => println!(
                    "drift detected: cluster {} at frame {} (trace {:#x})",
                    r.cluster, r.frame, r.trace
                ),
                RecordKind::TrainQueued => println!(
                    "train queued: cluster {} at frame {} (trace {:#x})",
                    r.cluster, r.frame, r.trace
                ),
                _ => println!(
                    "model installed: cluster {} at frame {} (train {:.1} ms, trace {:#x})",
                    r.cluster,
                    r.frame,
                    r.latency_us as f64 / 1e3,
                    r.trace
                ),
            }
        }
    }

    // A zone-map-pruned point query: the second concept only.
    let day_only =
        scan_log(&log_path, &Predicate { ts_min_us: Some(60_000), ..Default::default() })
            .expect("scan range");
    println!(
        "time-range query matched {} records, pruned {} of {} segments",
        day_only.records.len(),
        day_only.stats.segments_pruned,
        day_only.stats.segments_total,
    );
    assert!(day_only.stats.segments_pruned > 0, "expected zone-map pruning");

    if std::env::var_os("ODIN_STORE_DIR").is_none() {
        std::fs::remove_dir_all(&store_dir).ok();
    }
    println!("event log demo complete");
}

//! End-to-end drift stream (the §6.5 experiment in miniature).
//!
//! ```text
//! cargo run --release --example drift_stream
//! ```
//!
//! Replays the paper's streaming schedule — night only, then +day, then
//! +snow, then +rain — through ODIN with a DA-GAN latent encoder, and
//! prints the windowed detection accuracy (mAP) with drift events
//! marked, i.e. the shape of Figure 9.
//!
//! SPECIALIZER runs in background mode here: model training happens on
//! worker threads while the stream keeps flowing, and the pipeline-stage
//! stats at the end show how the gap was covered.

use odin_core::encoder::DaGanEncoder;
use odin_core::metrics::StreamEvaluator;
use odin_core::pipeline::{Odin, OdinConfig};
use odin_core::specializer::SpecializerConfig;
use odin_core::training::TrainingMode;
use odin_data::{DriftSchedule, SceneGen};
use odin_detect::Detector;
use odin_drift::ManagerConfig;
use odin_gan::{DaGan, DaGanConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let gen = SceneGen::new(48);

    // Train the DA-GAN on a held-out mixed sample (the "undefined"
    // images of §6.2) so its encoder knows the general frame manifold.
    println!("training DA-GAN encoder on held-out frames...");
    let held_out: Vec<odin_data::Image> = DriftSchedule::paper_end_to_end(150)
        .generate(&gen, &mut rng)
        .into_iter()
        .map(|f| f.image)
        .collect();
    let mut dagan = DaGan::new(DaGanConfig::bdd(), &mut rng);
    dagan.train(&mut rng, &held_out, 120, 8);

    let schedule = DriftSchedule::paper_end_to_end(1000);
    let teacher = Detector::heavy(48, &mut rng);
    let cfg = OdinConfig {
        manager: ManagerConfig {
            min_points: 24,
            stable_window: 6,
            kl_eps: 2e-3,
            ..ManagerConfig::default()
        },
        specializer: SpecializerConfig { train_iters: 400, ..SpecializerConfig::default() },
        training: TrainingMode::Background { workers: 2 },
        ..OdinConfig::default()
    };
    let mut odin = Odin::new(Box::new(DaGanEncoder::new(dagan)), teacher, cfg, 3);

    println!(
        "replaying {} frames (drift points at {:?})...",
        schedule.total(),
        schedule.drift_points()
    );
    let mut evaluator = StreamEvaluator::new(100);
    let mut drift_marks = Vec::new();
    let mut stream_rng = StdRng::seed_from_u64(12);
    for (i, frame) in schedule.generate(&gen, &mut stream_rng).iter().enumerate() {
        let result = odin.process(frame);
        if let Some(event) = result.drift {
            drift_marks.push((i, event.cluster_id));
        }
        evaluator.record(frame, result.detections);
        // An offline replay outruns any real camera; while a model is
        // still training in the background, pace frames at ~camera rate
        // so recovery lands mid-stream the way it would in deployment.
        let s = odin.stats();
        if s.queue_depth + s.in_flight > 0 {
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
    }

    println!();
    println!("windowed detection accuracy (each bar = 100 frames):");
    for point in evaluator.finish() {
        let bars = (point.map * 60.0) as usize;
        println!("  frame {:>5}  mAP {:.3}  {}", point.at, point.map, "#".repeat(bars));
    }
    // Land any model still training in the background.
    odin.finish_training();

    println!();
    for (at, cluster) in &drift_marks {
        println!("  drift at frame {at}: cluster {cluster} promoted + model scheduled");
    }
    println!("clusters: {}, models: {}", odin.manager().clusters().len(), odin.model_count());
    let stats = odin.stats();
    println!(
        "training: {} jobs, {} installed, {:.0} ms wall; gap served by teacher {} / fallback {} frames",
        stats.jobs_submitted,
        stats.models_installed,
        stats.train_wall_ms,
        stats.teacher_frames_while_pending,
        stats.fallback_frames_while_pending
    );
}

//! Model attic end-to-end: a recurring night/day stream under a
//! 1-cluster cap, so every regime switch evicts the other regime's
//! model. With the attic enabled the eviction archives the model, and
//! the regime's *return* reinstalls it from the archive instead of
//! retraining — the `attic_hit` records queried back here are the same
//! ones `odin scan --kind attic_hit` and `odin explain` read.
//!
//! ```text
//! cargo run --release --example attic_reinstall
//! ODIN_STORE_DIR=/tmp/store cargo run --release --example attic_reinstall
//! ```
//!
//! A manual clock is installed and advanced 1 ms per frame, so the
//! written `events.odlg` is a pure function of the frame stream —
//! running this example twice (at any `ODIN_THREADS`) produces
//! byte-identical files, which the CI smoke checks with `cmp`.

use std::sync::Arc;

use odin_core::encoder::HistogramEncoder;
use odin_core::pipeline::{Odin, OdinConfig};
use odin_core::specializer::SpecializerConfig;
use odin_core::{AtticConfig, CheckpointPolicy, EventLogConfig, EVENT_LOG_FILE};
use odin_data::{RecurringSchedule, SceneGen, Subset};
use odin_detect::{Detector, DetectorArch};
use odin_drift::ManagerConfig;
use odin_log::{scan_log, Predicate, RecordKind};
use odin_telemetry::ManualClock;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let store_dir = match std::env::var_os("ODIN_STORE_DIR") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("odin-attic-reinstall-{}", std::process::id())),
    };
    std::fs::remove_dir_all(&store_dir).ok();

    let mut rng = StdRng::seed_from_u64(0);
    let teacher = Detector::heavy(48, &mut rng);
    let cfg = OdinConfig {
        manager: ManagerConfig {
            min_points: 12,
            stable_window: 4,
            kl_eps: 5e-3,
            hist_hi: 8.0,
            // One live cluster: each promotion evicts the other regime.
            max_clusters: Some(1),
            ..ManagerConfig::default()
        },
        specializer: SpecializerConfig {
            arch: DetectorArch::Small,
            frame_size: 48,
            train_iters: 30,
            distill_iters: 20,
            batch_size: 4,
        },
        min_train_frames: 16,
        event_log: EventLogConfig {
            enabled: true,
            queue_cap: 4096,
            segment_records: 32,
            ..Default::default()
        },
        attic: AtticConfig::enabled(),
        ..OdinConfig::default()
    };
    let mut odin = Odin::new(Box::new(HistogramEncoder::new()), teacher, cfg, 42);
    let clock = Arc::new(ManualClock::new());
    odin.telemetry().set_clock(clock.clone());
    odin.enable_store(&store_dir, CheckpointPolicy::Manual).expect("enable store");

    // Six 60-frame windows: night, day, night, day, night, day. The
    // third window onward returns to a regime whose model was evicted
    // one window earlier — attic-hit territory.
    let gen = SceneGen::new(48);
    let mut rng = StdRng::seed_from_u64(2);
    let stream = RecurringSchedule::alternating(360, 60, &[Subset::Night, Subset::Day])
        .generate(&gen, &mut rng);
    println!("streaming {} recurring-drift frames at {}", stream.len(), store_dir.display());
    for f in &stream {
        odin.process(f);
        clock.advance_ms(1.0);
    }
    odin.flush_store();

    let (archived, attic_bytes) = odin.attic_stats();
    println!("attic holds {archived} archived models ({attic_bytes} bytes)");

    let log_path = store_dir.join(EVENT_LOG_FILE);
    for kind in [RecordKind::DriftDetected, RecordKind::AtticHit, RecordKind::ModelInstalled] {
        let res = scan_log(&log_path, &Predicate { kind: Some(kind), ..Default::default() })
            .expect("scan kind");
        for r in &res.records {
            match kind {
                RecordKind::DriftDetected => println!(
                    "drift detected: cluster {} at frame {} (trace {:#x})",
                    r.cluster, r.frame, r.trace
                ),
                RecordKind::AtticHit => println!(
                    "attic hit: cluster {} reinstalled at frame {} (trace {:#x})",
                    r.cluster, r.frame, r.trace
                ),
                _ => println!(
                    "model installed: cluster {} at frame {} (trace {:#x})",
                    r.cluster, r.frame, r.trace
                ),
            }
        }
    }

    let hits =
        scan_log(&log_path, &Predicate { kind: Some(RecordKind::AtticHit), ..Default::default() })
            .expect("scan hits")
            .records;
    assert!(!hits.is_empty(), "recurring stream produced no attic hits");
    // Every hit belongs to a full detect -> reinstall -> install arc on
    // one trace id, exactly as `odin explain` joins it.
    for h in &hits {
        let arc = scan_log(&log_path, &Predicate::default())
            .expect("scan all")
            .records
            .into_iter()
            .filter(|r| r.trace == h.trace)
            .collect::<Vec<_>>();
        assert!(arc.iter().any(|r| r.kind == RecordKind::DriftDetected));
        assert!(arc.iter().any(|r| r.kind == RecordKind::ModelInstalled));
    }

    if std::env::var_os("ODIN_STORE_DIR").is_none() {
        std::fs::remove_dir_all(&store_dir).ok();
    }
    println!("attic reinstall demo complete: {} hits", hits.len());
}

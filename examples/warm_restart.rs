//! Warm restart: checkpoint a live pipeline mid-stream, "crash", and
//! resume in a fresh process with zero re-learning.
//!
//! ```text
//! cargo run --release --example warm_restart
//! ```
//!
//! Phase 1 streams the first concept (NIGHT-DATA) through a live ODIN
//! with a store attached: every drift event and model install lands in
//! the WAL, and a snapshot is written after each drift. Phase 2 drops
//! the instance on the floor — the crash — and rebuilds from the store
//! directory alone. The restored pipeline then serves the second concept
//! and must make *bit-identical* serving decisions to the original: same
//! `ServedBy` path on every frame, same model weights, same deployment
//! footprint. A final pass corrupts the snapshot and shows the graceful
//! cold-bootstrap fallback.

use odin_core::encoder::HistogramEncoder;
use odin_core::pipeline::{Odin, OdinConfig};
use odin_core::specializer::SpecializerConfig;
use odin_core::{CheckpointPolicy, SNAPSHOT_FILE};
use odin_data::{SceneGen, Subset};
use odin_detect::{Detector, DetectorArch};
use odin_drift::ManagerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cold_odin() -> Odin {
    let mut rng = StdRng::seed_from_u64(0);
    let teacher = Detector::heavy(48, &mut rng);
    let cfg = OdinConfig {
        manager: ManagerConfig {
            min_points: 12,
            stable_window: 4,
            kl_eps: 5e-3,
            hist_hi: 8.0,
            ..ManagerConfig::default()
        },
        specializer: SpecializerConfig {
            arch: DetectorArch::Small,
            frame_size: 48,
            train_iters: 30,
            distill_iters: 20,
            batch_size: 4,
        },
        min_train_frames: 20,
        ..OdinConfig::default()
    };
    Odin::new(Box::new(HistogramEncoder::new()), teacher, cfg, 42)
}

fn main() {
    let store_dir = std::env::temp_dir().join(format!("odin-warm-restart-{}", std::process::id()));
    std::fs::remove_dir_all(&store_dir).ok();

    let gen = SceneGen::new(48);
    let mut rng = StdRng::seed_from_u64(2);
    let night = gen.subset_frames(&mut rng, Subset::Night, 60);
    let day = gen.subset_frames(&mut rng, Subset::Day, 60);

    // Phase 1: live pipeline with persistence attached.
    println!("phase 1: streaming NIGHT-DATA with a store at {}", store_dir.display());
    let mut live = cold_odin();
    live.enable_store(&store_dir, CheckpointPolicy::OnDrift).expect("enable store");
    live.process_stream(&night);
    live.flush_store();
    let stats = live.stats();
    println!(
        "  clusters: {}, models: {}, WAL events: {}, snapshots: {}",
        live.manager().clusters().len(),
        live.model_count(),
        stats.wal_events_logged,
        stats.snapshots_written,
    );
    assert!(live.model_count() > 0, "expected at least one specialized model");

    // A clean-shutdown snapshot at the "crash" point. The OnDrift
    // snapshots + WAL above already guarantee no *learned* state can be
    // lost; this full snapshot additionally captures the transient frame
    // buffers, which is what makes the continuation bit-identical
    // rather than merely converged.
    live.checkpoint(&store_dir.join(SNAPSHOT_FILE)).expect("shutdown snapshot");

    // Phase 2: "crash" and restore from disk alone — *before* the live
    // instance moves on, so both start the second concept from the same
    // recovered state.
    println!("phase 2: restoring from {}", store_dir.display());
    let mut restored = Odin::restore_from_dir(&store_dir).expect("warm restore");
    println!(
        "  restored clusters: {}, models: {}, memory: {} bytes",
        restored.manager().clusters().len(),
        restored.model_count(),
        restored.memory_bytes(),
    );
    assert_eq!(restored.memory_bytes(), live.memory_bytes());

    // The reference continuation: what the original process serves on
    // the second concept vs what the restored one serves.
    let reference: Vec<_> = live.process_stream(&day).iter().map(|r| r.served_by).collect();
    let served: Vec<_> = restored.process_stream(&day).iter().map(|r| r.served_by).collect();
    assert_eq!(served, reference, "restored pipeline diverged from the original");
    assert_eq!(restored.memory_bytes(), live.memory_bytes());
    println!(
        "  identical serving on {} DAY-DATA frames (and identical {}-byte footprint)",
        served.len(),
        restored.memory_bytes(),
    );

    // Phase 3: corruption is rejected, not served.
    println!("phase 3: corrupting the snapshot");
    let snap = store_dir.join(SNAPSHOT_FILE);
    let mut bytes = std::fs::read(&snap).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&snap, &bytes).expect("write corrupted snapshot");
    match Odin::restore_from_dir(&store_dir) {
        Err(e) => println!("  corruption detected as expected: {e}"),
        Ok(_) => panic!("corrupt snapshot must not restore"),
    }
    let cold = Odin::restore_or_else(&snap, cold_odin);
    println!("  cold bootstrap fallback engaged: {} models (fresh system)", cold.model_count());

    std::fs::remove_dir_all(&store_dir).ok();
    println!("warm restart demo complete");
}
